// Package faultfs abstracts the handful of filesystem operations the
// durability layer performs (create/open/write/sync/rename/remove plus
// directory fsync) behind an interface, so tests can interpose a
// deterministic fault injector between the WAL/checkpoint code and the
// disk. Production code passes OS (or nil, which every consumer
// normalizes to OS) and pays one interface call per IO; tests pass an
// *Injector wrapping OS and script the exact operation that fails.
//
// The surface is intentionally the subset the storage layer uses —
// this is not a general VFS. Read paths (replay, snapshot restore) go
// through the same interface so torn-read experiments are possible,
// but injection there is optional: the recovery contract is enforced
// by the write side.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the per-handle surface: sequential reads/writes, fsync, and
// close. *os.File satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data (and metadata) to stable storage.
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the directory-level surface. All paths are interpreted exactly
// as the os package would interpret them.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename is os.Rename. Implementations must preserve its
	// atomic-replace semantics on POSIX filesystems.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat is os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// Truncate is os.Truncate.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making renames, creates,
	// and removes within it durable.
	SyncDir(dir string) error
}

// OS is the passthrough implementation backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Create opens name for writing, truncating it if it exists — the
// os.Create idiom over an FS.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open opens name read-only — the os.Open idiom over an FS.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// OrOS normalizes a possibly-nil FS to the real filesystem, so option
// structs can leave the field zero-valued.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
