package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestInjectorNthSync(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, 1)
	in.Add(Rule{Op: OpSync, Nth: 2})

	f, err := Create(in, filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: want ErrInjected, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync should pass (Nth fires once): %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := in.Injected(); got != 1 {
		t.Fatalf("Injected() = %d, want 1", got)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, 1)
	in.Add(Rule{Op: OpWrite, Nth: 1, Fault: Fault{ShortWrite: true}})

	path := filepath.Join(dir, "a")
	f, err := Create(in, path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if n != len(payload)/2 {
		t.Fatalf("short write persisted %d bytes, want %d", n, len(payload)/2)
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want ErrInjected wrapping io.ErrShortWrite, got %v", err)
	}
	f.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("on-disk content %q, want the torn half %q", b, "01234")
	}
}

func TestInjectorENOSPC(t *testing.T) {
	in := NewInjector(nil, 1)
	in.Add(Rule{Op: OpWrite, Nth: 1, Fault: Fault{Err: ErrNoSpace}})
	f, err := Create(in, filepath.Join(t.TempDir(), "a"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Write([]byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected marker, got %v", err)
	}
}

func TestInjectorPathScoping(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, 1)
	in.Add(Rule{Op: OpCreate, Path: filepath.Join(dir, "tenant-a"), Nth: 1, Times: 100})

	if err := in.MkdirAll(filepath.Join(dir, "tenant-a"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := in.MkdirAll(filepath.Join(dir, "tenant-b"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(in, filepath.Join(dir, "tenant-a", "f")); !errors.Is(err, ErrInjected) {
		t.Fatalf("tenant-a create: want ErrInjected, got %v", err)
	}
	f, err := Create(in, filepath.Join(dir, "tenant-b", "f"))
	if err != nil {
		t.Fatalf("tenant-b must be unaffected: %v", err)
	}
	f.Close()
}

func TestInjectorProbSeeded(t *testing.T) {
	// Same seed, same schedule: the set of faulted op indexes must be
	// identical across two runs.
	run := func() []uint64 {
		in := NewInjector(nil, 42)
		in.Add(Rule{Op: OpSync, Prob: 0.5})
		f, err := Create(in, filepath.Join(t.TempDir(), "a"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var faulted []uint64
		for i := uint64(0); i < 64; i++ {
			if err := f.Sync(); err != nil {
				faulted = append(faulted, i)
			}
		}
		return faulted
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("prob 0.5 over 64 ops faulted %d times; schedule degenerate", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("seeded schedules diverge: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestInjectorHeal(t *testing.T) {
	in := NewInjector(nil, 1)
	in.Add(Rule{Op: OpSync, Nth: 1, Times: 1 << 30})
	f, err := Create(in, filepath.Join(t.TempDir(), "a"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	in.Heal()
	if err := f.Sync(); err != nil {
		t.Fatalf("healed injector still faulting: %v", err)
	}
}

func TestInjectorLatencyOnly(t *testing.T) {
	in := NewInjector(nil, 1)
	in.Add(Rule{Op: OpWrite, Nth: 1, Fault: Fault{Latency: 30 * time.Millisecond}})
	f, err := Create(in, filepath.Join(t.TempDir(), "a"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("latency-only fault must not fail the op: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency not injected: write took %v", d)
	}
	if got := in.Injected(); got != 0 {
		t.Fatalf("latency-only fault counted as injected error: %d", got)
	}
}

func TestInjectorRenameAndSyncDir(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil, 1)
	in.Add(Rule{Op: OpRename, Nth: 1})
	in.Add(Rule{Op: OpSyncDir, Nth: 1})

	f, err := Create(in, filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := in.Rename(filepath.Join(dir, "tmp"), filepath.Join(dir, "final")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: want ErrInjected, got %v", err)
	}
	if err := in.SyncDir(dir); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir: want ErrInjected, got %v", err)
	}
	// Both fired once; now clean.
	if err := in.Rename(filepath.Join(dir, "tmp"), filepath.Join(dir, "final")); err != nil {
		t.Fatalf("second rename should pass: %v", err)
	}
	if err := in.SyncDir(dir); err != nil {
		t.Fatalf("second syncdir should pass: %v", err)
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := Create(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	r, err := Open(OS, path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back %q, %v", b, err)
	}
	if _, err := OS.Stat(path); err != nil {
		t.Fatal(err)
	}
	if OrOS(nil) != OS {
		t.Fatal("OrOS(nil) != OS")
	}
}
