package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected marks every fault the injector manufactures. Tests match
// it with errors.Is; production code never sees it.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrNoSpace is an injected ENOSPC: errors.Is matches both ErrInjected
// and syscall.ENOSPC, so code that special-cases a full disk sees the
// real errno.
var ErrNoSpace = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// Op names a filesystem operation class for rule matching.
type Op string

const (
	OpOpen     Op = "open" // OpenFile without O_CREATE
	OpCreate   Op = "create"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdirAll Op = "mkdirall"
	OpStat     Op = "stat"
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
)

// Fault describes what happens when a rule fires.
type Fault struct {
	// Err is the error returned. Nil means ErrInjected unless the
	// fault is latency-only (Latency set, Err nil, ShortWrite false),
	// in which case the operation proceeds normally after the delay.
	Err error
	// ShortWrite makes a write persist only half its payload and then
	// fail (with Err or io.ErrShortWrite), modeling a torn write.
	ShortWrite bool
	// Latency is slept before the operation is attempted.
	Latency time.Duration
}

// latencyOnly reports whether the fault delays but does not fail.
func (f Fault) latencyOnly() bool {
	return f.Latency > 0 && f.Err == nil && !f.ShortWrite
}

func (f Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	if f.ShortWrite {
		return fmt.Errorf("%w: %w", ErrInjected, io.ErrShortWrite)
	}
	return ErrInjected
}

// Rule selects operations to fault. A zero field matches everything of
// its kind: Op "" matches any operation, Path "" any path. Exactly one
// of Nth/Prob schedules the firing: Nth fires deterministically on the
// Nth matching operation (1-based, counted per rule); Prob fires each
// matching operation independently with the given probability using
// the injector's seeded RNG. Times caps total firings (0 means once
// for Nth rules, unlimited for Prob rules).
type Rule struct {
	Op    Op
	Path  string // substring match against the operation's path
	Nth   uint64
	Prob  float64
	Times int
	Fault Fault
}

type activeRule struct {
	Rule
	seen  uint64
	fired int
}

// Injector wraps an FS and fails operations according to a scripted or
// seeded-random schedule. Safe for concurrent use.
type Injector struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*activeRule
	ops      uint64
	injected uint64
}

var _ FS = (*Injector)(nil)

// NewInjector wraps inner (nil → OS). The seed drives probabilistic
// rules; deterministic Nth rules ignore it.
func NewInjector(inner FS, seed int64) *Injector {
	return &Injector{inner: OrOS(inner), rng: rand.New(rand.NewSource(seed))}
}

// Add installs a rule. Rules are evaluated in insertion order; the
// first one that fires wins.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	in.rules = append(in.rules, &activeRule{Rule: r})
	in.mu.Unlock()
}

// Heal drops every rule: the disk behaves normally again. Counters are
// preserved.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// Ops returns the total operations observed (faulted or not).
func (in *Injector) Ops() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Injected returns how many faults have fired.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// check records one operation and returns the fault to apply, if any.
func (in *Injector) check(op Op, path string) (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	for _, r := range in.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		max := r.Times
		if max == 0 && r.Nth > 0 {
			max = 1
		}
		if max > 0 && r.fired >= max {
			continue
		}
		fire := false
		if r.Nth > 0 {
			fire = r.seen >= r.Nth
		} else if r.Prob > 0 {
			fire = in.rng.Float64() < r.Prob
		}
		if !fire {
			continue
		}
		r.fired++
		if !r.Fault.latencyOnly() {
			in.injected++
		}
		return r.Fault, true
	}
	return Fault{}, false
}

// apply sleeps the fault's latency and returns the error to surface,
// or nil for latency-only faults.
func apply(f Fault) error {
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.latencyOnly() {
		return nil
	}
	return f.err()
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	op := OpOpen
	if flag&syscall.O_CREAT != 0 {
		op = OpCreate
	}
	if f, ok := in.check(op, name); ok {
		if err := apply(f); err != nil {
			return nil, &fs.PathError{Op: string(op), Path: name, Err: err}
		}
	}
	inner, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inner: inner, in: in, name: name}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if f, ok := in.check(OpRename, newpath); ok {
		if err := apply(f); err != nil {
			return &fs.PathError{Op: "rename", Path: newpath, Err: err}
		}
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if f, ok := in.check(OpRemove, name); ok {
		if err := apply(f); err != nil {
			return &fs.PathError{Op: "remove", Path: name, Err: err}
		}
	}
	return in.inner.Remove(name)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if f, ok := in.check(OpMkdirAll, path); ok {
		if err := apply(f); err != nil {
			return &fs.PathError{Op: "mkdirall", Path: path, Err: err}
		}
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	return in.inner.ReadDir(name)
}

func (in *Injector) Stat(name string) (fs.FileInfo, error) {
	if f, ok := in.check(OpStat, name); ok {
		if err := apply(f); err != nil {
			return nil, &fs.PathError{Op: "stat", Path: name, Err: err}
		}
	}
	return in.inner.Stat(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if f, ok := in.check(OpTruncate, name); ok {
		if err := apply(f); err != nil {
			return &fs.PathError{Op: "truncate", Path: name, Err: err}
		}
	}
	return in.inner.Truncate(name, size)
}

func (in *Injector) SyncDir(dir string) error {
	if f, ok := in.check(OpSyncDir, dir); ok {
		if err := apply(f); err != nil {
			return &fs.PathError{Op: "syncdir", Path: dir, Err: err}
		}
	}
	return in.inner.SyncDir(dir)
}

// injFile interposes on per-handle operations.
type injFile struct {
	inner File
	in    *Injector
	name  string
}

func (f *injFile) Name() string { return f.name }

func (f *injFile) Read(p []byte) (int, error) {
	if flt, ok := f.in.check(OpRead, f.name); ok {
		if err := apply(flt); err != nil {
			return 0, err
		}
	}
	return f.inner.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	if flt, ok := f.in.check(OpWrite, f.name); ok {
		if flt.Latency > 0 {
			time.Sleep(flt.Latency)
		}
		if flt.latencyOnly() {
			return f.inner.Write(p)
		}
		if flt.ShortWrite {
			n, err := f.inner.Write(p[:len(p)/2])
			if err == nil {
				err = flt.err()
			}
			return n, err
		}
		return 0, flt.err()
	}
	return f.inner.Write(p)
}

func (f *injFile) Sync() error {
	if flt, ok := f.in.check(OpSync, f.name); ok {
		if err := apply(flt); err != nil {
			return err
		}
	}
	return f.inner.Sync()
}

func (f *injFile) Close() error {
	if flt, ok := f.in.check(OpClose, f.name); ok {
		if err := apply(flt); err != nil {
			// The handle still closes: a failed close must not leak
			// the descriptor.
			f.inner.Close()
			return err
		}
	}
	return f.inner.Close()
}
