// Package quadtree implements a PR (point-region) quadtree over planar
// points. It is the "traditional spatial index" the paper's baseline (BL)
// uses: user-trajectory points are indexed here, and for each candidate
// facility a circular range query around every stop retrieves the served
// points.
package quadtree

import (
	"github.com/trajcover/trajcover/internal/geo"
)

// Item is a point with an opaque payload. The query package packs
// (trajectory id, point index) into Data.
type Item struct {
	P    geo.Point
	Data uint64
}

// DefaultCapacity is the leaf bucket size used when Options.Capacity is 0.
const DefaultCapacity = 32

// DefaultMaxDepth bounds tree depth so duplicate or near-duplicate points
// cannot force unbounded splitting.
const DefaultMaxDepth = 24

// Options configures a Tree.
type Options struct {
	// Capacity is the maximum number of items a leaf holds before it
	// splits (0 means DefaultCapacity).
	Capacity int
	// MaxDepth bounds splitting (0 means DefaultMaxDepth). Leaves at
	// MaxDepth grow beyond Capacity instead of splitting.
	MaxDepth int
}

// Tree is a PR quadtree. Construct with New; the zero value is not usable.
type Tree struct {
	root     *node
	bounds   geo.Rect
	capacity int
	maxDepth int
	size     int
}

type node struct {
	rect     geo.Rect
	items    []Item // leaf payload; nil for internal nodes after split
	children *[4]node
	depth    int
}

// New returns an empty tree covering bounds.
func New(bounds geo.Rect, opts Options) *Tree {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	return &Tree{
		root:     &node{rect: bounds},
		bounds:   bounds,
		capacity: opts.Capacity,
		maxDepth: opts.MaxDepth,
	}
}

// Build constructs a tree containing all items, growing bounds to cover
// them if necessary.
func Build(bounds geo.Rect, items []Item, opts Options) *Tree {
	for _, it := range items {
		bounds = bounds.ExtendPoint(it.P)
	}
	t := New(bounds, opts)
	for _, it := range items {
		t.Insert(it)
	}
	return t
}

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Bounds returns the tree's root rectangle.
func (t *Tree) Bounds() geo.Rect { return t.bounds }

// Insert adds an item. Points outside the root bounds are clamped into
// them (the tree never rebalances its root).
func (t *Tree) Insert(it Item) {
	if !t.bounds.Contains(it.P) {
		it.P = clamp(it.P, t.bounds)
	}
	t.insert(t.root, it)
	t.size++
}

func clamp(p geo.Point, r geo.Rect) geo.Point {
	if p.X < r.MinX {
		p.X = r.MinX
	}
	if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	}
	if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}

func (t *Tree) insert(n *node, it Item) {
	for {
		if n.children == nil {
			n.items = append(n.items, it)
			if len(n.items) > t.capacity && n.depth < t.maxDepth {
				t.split(n)
			}
			return
		}
		n = &n.children[n.rect.QuadrantOf(it.P)]
	}
}

func (t *Tree) split(n *node) {
	n.children = &[4]node{}
	for q := 0; q < 4; q++ {
		n.children[q] = node{rect: n.rect.Quadrant(q), depth: n.depth + 1}
	}
	items := n.items
	n.items = nil
	for _, it := range items {
		child := &n.children[n.rect.QuadrantOf(it.P)]
		child.items = append(child.items, it)
	}
	// A pathological split can put everything in one child; recurse until
	// depth or capacity stops it.
	for q := 0; q < 4; q++ {
		c := &n.children[q]
		if len(c.items) > t.capacity && c.depth < t.maxDepth {
			t.split(c)
		}
	}
}

// SearchRect calls fn for every item whose point lies inside r (boundary
// inclusive). Iteration stops early if fn returns false.
func (t *Tree) SearchRect(r geo.Rect, fn func(Item) bool) {
	t.searchRect(t.root, r, fn)
}

func (t *Tree) searchRect(n *node, r geo.Rect, fn func(Item) bool) bool {
	if !n.rect.Intersects(r) {
		return true
	}
	if n.children == nil {
		for _, it := range n.items {
			if r.Contains(it.P) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for q := 0; q < 4; q++ {
		if !t.searchRect(&n.children[q], r, fn) {
			return false
		}
	}
	return true
}

// SearchCircle calls fn for every item within radius of center (boundary
// inclusive). Iteration stops early if fn returns false.
func (t *Tree) SearchCircle(center geo.Point, radius float64, fn func(Item) bool) {
	r2 := radius * radius
	t.searchCircle(t.root, center, radius, r2, fn)
}

func (t *Tree) searchCircle(n *node, c geo.Point, r, r2 float64, fn func(Item) bool) bool {
	if n.rect.Dist2ToPoint(c) > r2 {
		return true
	}
	if n.children == nil {
		for _, it := range n.items {
			if it.P.Dist2(c) <= r2 {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for q := 0; q < 4; q++ {
		if !t.searchCircle(&n.children[q], c, r, r2, fn) {
			return false
		}
	}
	return true
}

// CountCircle returns the number of items within radius of center.
func (t *Tree) CountCircle(center geo.Point, radius float64) int {
	n := 0
	t.SearchCircle(center, radius, func(Item) bool { n++; return true })
	return n
}

// Stats describes the shape of the tree, for diagnostics and tests.
type Stats struct {
	Nodes    int
	Leaves   int
	MaxDepth int
	Items    int
}

// Stats walks the tree and returns its shape.
func (t *Tree) Stats() Stats {
	var s Stats
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		if n.depth > s.MaxDepth {
			s.MaxDepth = n.depth
		}
		if n.children == nil {
			s.Leaves++
			s.Items += len(n.items)
			return
		}
		for q := 0; q < 4; q++ {
			walk(&n.children[q])
		}
	}
	walk(t.root)
	return s
}
