package quadtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
)

func randomItems(n int, seed int64, bounds geo.Rect) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			P: geo.Pt(
				bounds.MinX+rng.Float64()*bounds.Width(),
				bounds.MinY+rng.Float64()*bounds.Height(),
			),
			Data: uint64(i),
		}
	}
	return items
}

func collectRect(t *Tree, r geo.Rect) []uint64 {
	var out []uint64
	t.SearchRect(r, func(it Item) bool { out = append(out, it.Data); return true })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectCircle(t *Tree, c geo.Point, rad float64) []uint64 {
	var out []uint64
	t.SearchCircle(c, rad, func(it Item) bool { out = append(out, it.Data); return true })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteRect(items []Item, r geo.Rect) []uint64 {
	var out []uint64
	for _, it := range items {
		if r.Contains(it.P) {
			out = append(out, it.Data)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteCircle(items []Item, c geo.Point, rad float64) []uint64 {
	var out []uint64
	r2 := rad * rad
	for _, it := range items {
		if it.P.Dist2(c) <= r2 {
			out = append(out, it.Data)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSearchRectMatchesBruteForce(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	items := randomItems(5000, 1, bounds)
	tree := Build(bounds, items, Options{Capacity: 16})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		b := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		r := geo.NewRect(a, b)
		got := collectRect(tree, r)
		want := bruteRect(items, r)
		if !equalU64(got, want) {
			t.Fatalf("rect %v: got %d items, want %d", r, len(got), len(want))
		}
	}
}

func TestSearchCircleMatchesBruteForce(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	items := randomItems(5000, 3, bounds)
	tree := Build(bounds, items, Options{Capacity: 16})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		c := geo.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rad := rng.Float64() * 200
		got := collectCircle(tree, c, rad)
		want := bruteCircle(items, c, rad)
		if !equalU64(got, want) {
			t.Fatalf("circle %v r=%v: got %d items, want %d", c, rad, len(got), len(want))
		}
	}
}

func TestInsertIncremental(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	tree := New(bounds, Options{Capacity: 4})
	items := randomItems(500, 5, bounds)
	for i, it := range items {
		tree.Insert(it)
		if tree.Len() != i+1 {
			t.Fatalf("Len = %d after %d inserts", tree.Len(), i+1)
		}
	}
	got := collectRect(tree, bounds)
	if len(got) != 500 {
		t.Fatalf("full-rect search returned %d items, want 500", len(got))
	}
}

func TestDuplicatePointsDoNotBlowUp(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	tree := New(bounds, Options{Capacity: 2, MaxDepth: 8})
	p := geo.Pt(3.33, 7.77)
	for i := 0; i < 1000; i++ {
		tree.Insert(Item{P: p, Data: uint64(i)})
	}
	st := tree.Stats()
	if st.MaxDepth > 8 {
		t.Errorf("depth %d exceeded MaxDepth 8", st.MaxDepth)
	}
	if got := tree.CountCircle(p, 0.001); got != 1000 {
		t.Errorf("CountCircle at duplicate point = %d, want 1000", got)
	}
}

func TestOutOfBoundsPointsClamp(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	tree := New(bounds, Options{})
	tree.Insert(Item{P: geo.Pt(-5, 50), Data: 42})
	found := false
	tree.SearchRect(bounds, func(it Item) bool {
		if it.Data == 42 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("clamped out-of-bounds item not retrievable")
	}
}

func TestEarlyTermination(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	items := randomItems(1000, 6, bounds)
	tree := Build(bounds, items, Options{})
	calls := 0
	tree.SearchRect(bounds, func(Item) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Errorf("visitor called %d times, want exactly 10", calls)
	}
	calls = 0
	tree.SearchCircle(geo.Pt(50, 50), 1000, func(Item) bool {
		calls++
		return calls < 7
	})
	if calls != 7 {
		t.Errorf("circle visitor called %d times, want exactly 7", calls)
	}
}

func TestCountCircle(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	tree := New(bounds, Options{})
	// Ring of 8 points at distance 5 from center plus one at distance 20.
	c := geo.Pt(50, 50)
	for i := 0; i < 8; i++ {
		tree.Insert(Item{P: geo.Pt(50+5, 50), Data: uint64(i)})
	}
	tree.Insert(Item{P: geo.Pt(70, 50), Data: 99})
	if got := tree.CountCircle(c, 5.0); got != 8 {
		t.Errorf("CountCircle(r=5) = %d, want 8 (boundary inclusive)", got)
	}
	if got := tree.CountCircle(c, 25); got != 9 {
		t.Errorf("CountCircle(r=25) = %d, want 9", got)
	}
	if got := tree.CountCircle(c, 1); got != 0 {
		t.Errorf("CountCircle(r=1) = %d, want 0", got)
	}
}

func TestStats(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	items := randomItems(2000, 7, bounds)
	tree := Build(bounds, items, Options{Capacity: 8})
	st := tree.Stats()
	if st.Items != 2000 {
		t.Errorf("Stats.Items = %d, want 2000", st.Items)
	}
	if st.Leaves == 0 || st.Nodes < st.Leaves {
		t.Errorf("implausible stats %+v", st)
	}
	// Internal nodes = (Nodes-Leaves); a quadtree has Nodes = 4*internal+1.
	if st.Nodes != 4*(st.Nodes-st.Leaves)+1 {
		t.Errorf("node arithmetic broken: %+v", st)
	}
}

func TestBuildGrowsBounds(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	items := []Item{{P: geo.Pt(500, 500), Data: 1}, {P: geo.Pt(-10, 3), Data: 2}}
	tree := Build(bounds, items, Options{})
	if got := collectRect(tree, tree.Bounds()); len(got) != 2 {
		t.Errorf("Build lost items outside initial bounds: found %d", len(got))
	}
}

func TestEmptyTreeSearches(t *testing.T) {
	tree := New(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Options{})
	tree.SearchRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, func(Item) bool {
		t.Error("visitor called on empty tree")
		return true
	})
	if tree.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
}
