package datagen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
)

func TestCityDeterminism(t *testing.T) {
	a := NewCity(geo.Rect{MaxX: 1000, MaxY: 1000}, 10, 7)
	b := NewCity(geo.Rect{MaxX: 1000, MaxY: 1000}, 10, 7)
	if len(a.Hotspots) != len(b.Hotspots) {
		t.Fatal("hotspot counts differ")
	}
	for i := range a.Hotspots {
		if a.Hotspots[i] != b.Hotspots[i] {
			t.Fatalf("hotspot %d differs", i)
		}
	}
	c := NewCity(geo.Rect{MaxX: 1000, MaxY: 1000}, 10, 8)
	same := true
	for i := range a.Hotspots {
		if a.Hotspots[i] != c.Hotspots[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical cities")
	}
}

func TestSampleStaysInBounds(t *testing.T) {
	c := NewYork()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		p := c.Sample(rng)
		if !c.Bounds.Contains(p) {
			t.Fatalf("sample %v outside bounds %v", p, c.Bounds)
		}
	}
}

func TestSampleIsSkewed(t *testing.T) {
	// Hotspot sampling must concentrate points near activity centers:
	// the mean distance to the nearest hotspot center must be far below
	// the uniform expectation.
	c := NewYork()
	rng := rand.New(rand.NewSource(2))
	nearest := func(p geo.Point) float64 {
		best := math.Inf(1)
		for _, h := range c.Hotspots {
			if d := p.Dist(h.Center); d < best {
				best = d
			}
		}
		return best
	}
	const n = 1000
	var hot, unif float64
	for i := 0; i < n; i++ {
		hot += nearest(c.Sample(rng))
		unif += nearest(c.uniform(rng))
	}
	if hot >= 0.5*unif {
		t.Errorf("hotspot sampling barely concentrated: mean nearest-hotspot %v vs uniform %v",
			hot/n, unif/n)
	}
}

func TestTaxiTrips(t *testing.T) {
	c := NewYork()
	trips := TaxiTrips(c, 1000, 3)
	if len(trips) != 1000 {
		t.Fatalf("got %d trips", len(trips))
	}
	for i, tr := range trips {
		if tr.Len() != 2 {
			t.Fatalf("trip %d has %d points", i, tr.Len())
		}
		if int(tr.ID) != i {
			t.Fatalf("trip %d has ID %d", i, tr.ID)
		}
		if !c.Bounds.Contains(tr.Source()) || !c.Bounds.Contains(tr.Dest()) {
			t.Fatalf("trip %d outside bounds", i)
		}
		if tr.Length() == 0 {
			t.Fatalf("trip %d has zero length", i)
		}
	}
	// Deterministic.
	again := TaxiTrips(c, 1000, 3)
	for i := range trips {
		if trips[i].Source() != again[i].Source() || trips[i].Dest() != again[i].Dest() {
			t.Fatal("TaxiTrips not deterministic")
		}
	}
	other := TaxiTrips(c, 1000, 4)
	if trips[0].Source() == other[0].Source() {
		t.Error("different seeds produced identical first trip")
	}
}

func TestCheckins(t *testing.T) {
	c := NewYork()
	trajs := Checkins(c, 500, 8, 5)
	if len(trajs) != 500 {
		t.Fatalf("got %d", len(trajs))
	}
	sawMulti := false
	for _, tr := range trajs {
		if tr.Len() < 2 || tr.Len() > 8 {
			t.Fatalf("checkin trajectory with %d points", tr.Len())
		}
		if tr.Len() > 2 {
			sawMulti = true
		}
		for _, p := range tr.Points {
			if !c.Bounds.Contains(p) {
				t.Fatal("checkin outside bounds")
			}
		}
	}
	if !sawMulti {
		t.Error("no multipoint check-in trajectories generated")
	}
}

func TestGPSTraces(t *testing.T) {
	c := Beijing()
	trajs := GPSTraces(c, 200, 10, 100, 6)
	if len(trajs) != 200 {
		t.Fatalf("got %d", len(trajs))
	}
	var totalPts int
	for _, tr := range trajs {
		if tr.Len() < 10 || tr.Len() > 100 {
			t.Fatalf("trace with %d points", tr.Len())
		}
		totalPts += tr.Len()
		// Steps should be bounded (clamping can shorten them, headings
		// are persistent) — just verify no teleports.
		for i := 0; i < tr.NumSegments(); i++ {
			if tr.SegmentLength(i) > 1200 {
				t.Fatalf("trace segment of %v m", tr.SegmentLength(i))
			}
		}
	}
	if avg := float64(totalPts) / 200; avg < 20 {
		t.Errorf("average trace length %v suspiciously short", avg)
	}
}

func TestBusRoutes(t *testing.T) {
	c := NewYork()
	for _, stops := range []int{1, 8, 64, 512} {
		routes := BusRoutes(c, 20, stops, 7)
		if len(routes) != 20 {
			t.Fatalf("got %d routes", len(routes))
		}
		for _, r := range routes {
			if r.Len() != stops {
				t.Fatalf("route has %d stops, want %d", r.Len(), stops)
			}
			for _, s := range r.Stops {
				if !c.Bounds.Contains(s) {
					t.Fatal("stop outside bounds")
				}
			}
			// Consecutive stops should be spaced like a bus route, not
			// teleporting across the city.
			for i := 1; i < r.Len(); i++ {
				if d := r.Stops[i-1].Dist(r.Stops[i]); d > 1000 {
					t.Fatalf("stop spacing %v m too large", d)
				}
			}
		}
	}
}

func TestBusRouteSpacingRealistic(t *testing.T) {
	c := NewYork()
	routes := BusRoutes(c, 10, 32, 9)
	var sum float64
	var count int
	for _, r := range routes {
		for i := 1; i < r.Len(); i++ {
			sum += r.Stops[i-1].Dist(r.Stops[i])
			count++
		}
	}
	avg := sum / float64(count)
	if math.Abs(avg-400) > 150 {
		t.Errorf("average stop spacing %v m, want ~400", avg)
	}
}

func TestPaperConstants(t *testing.T) {
	// Guard the paper-scale constants against accidental edits.
	if NYT3Days != 1032637 || NYT1Day != 357139 {
		t.Error("NYT constants drifted from Table II")
	}
	if NYRoutes != 2024 || NYStops != 16999 || BJRoutes != 1842 || BJStops != 21489 {
		t.Error("facility constants drifted from Table I")
	}
	if NYFTrajectories != 212751 || BJGTrajectories != 30266 {
		t.Error("user dataset constants drifted from Table II")
	}
}
