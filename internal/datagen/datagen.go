// Package datagen generates the synthetic workloads that stand in for the
// paper's real datasets, which are not redistributable here:
//
//   - TaxiTrips ⇢ NY yellow-taxi pick-up/drop-off pairs (NYT),
//   - Checkins ⇢ NY Foursquare daily check-in sequences (NYF),
//   - GPSTraces ⇢ Beijing Geolife GPS traces (BJG),
//   - BusRoutes ⇢ NY / Beijing bus-route networks (facilities).
//
// Every generator is deterministic in its seed. The city model is a
// Zipf-weighted mixture of Gaussian hotspots over a city-scale extent
// plus a uniform background — reproducing the spatial skew (many
// co-located trajectory endpoints) that drives the TQ-tree's behaviour.
// See DESIGN.md §4 for the substitution rationale.
package datagen

import (
	"math"
	"math/rand"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Hotspot is one Gaussian activity center of a city.
type Hotspot struct {
	Center geo.Point
	Sigma  float64 // spread in meters
	Weight float64 // relative sampling weight
}

// City is a synthetic city model: a planar extent (meters) with weighted
// hotspots.
type City struct {
	Bounds     geo.Rect
	Hotspots   []Hotspot
	Background float64 // probability of a uniform background sample
	cum        []float64
}

// NewCity builds a city with n Zipf-weighted hotspots placed uniformly at
// random inside bounds. The same seed always yields the same city.
func NewCity(bounds geo.Rect, n int, seed int64) *City {
	rng := rand.New(rand.NewSource(seed))
	c := &City{Bounds: bounds, Background: 0.1}
	minDim := math.Min(bounds.Width(), bounds.Height())
	for i := 0; i < n; i++ {
		c.Hotspots = append(c.Hotspots, Hotspot{
			Center: c.uniform(rng),
			Sigma:  minDim * (0.005 + rng.Float64()*0.02),
			Weight: 1 / math.Pow(float64(i+1), 0.8), // Zipf-ish skew
		})
	}
	c.finalize()
	return c
}

// NewYork returns the synthetic stand-in for the New York extent used by
// the NYT/NYF datasets: ~30 km × 40 km with 40 hotspots.
func NewYork() *City {
	return NewCity(geo.Rect{MinX: 0, MinY: 0, MaxX: 30000, MaxY: 40000}, 40, 1001)
}

// Beijing returns the synthetic stand-in for the Beijing extent used by
// the BJG dataset: ~40 km × 40 km with 50 hotspots.
func Beijing() *City {
	return NewCity(geo.Rect{MinX: 0, MinY: 0, MaxX: 40000, MaxY: 40000}, 50, 2002)
}

func (c *City) finalize() {
	c.cum = make([]float64, len(c.Hotspots))
	var sum float64
	for i, h := range c.Hotspots {
		sum += h.Weight
		c.cum[i] = sum
	}
}

func (c *City) uniform(rng *rand.Rand) geo.Point {
	return geo.Pt(
		c.Bounds.MinX+rng.Float64()*c.Bounds.Width(),
		c.Bounds.MinY+rng.Float64()*c.Bounds.Height(),
	)
}

// Sample draws a point from the hotspot mixture (or background).
func (c *City) Sample(rng *rand.Rand) geo.Point {
	if len(c.Hotspots) == 0 || rng.Float64() < c.Background {
		return c.uniform(rng)
	}
	total := c.cum[len(c.cum)-1]
	r := rng.Float64() * total
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h := c.Hotspots[lo]
	return c.clamp(geo.Pt(
		h.Center.X+rng.NormFloat64()*h.Sigma,
		h.Center.Y+rng.NormFloat64()*h.Sigma,
	))
}

func (c *City) clamp(p geo.Point) geo.Point {
	if p.X < c.Bounds.MinX {
		p.X = c.Bounds.MinX
	}
	if p.X > c.Bounds.MaxX {
		p.X = c.Bounds.MaxX
	}
	if p.Y < c.Bounds.MinY {
		p.Y = c.Bounds.MinY
	}
	if p.Y > c.Bounds.MaxY {
		p.Y = c.Bounds.MaxY
	}
	return p
}

// TaxiTrips generates n point-to-point trips (the NYT stand-in). Origins
// come from the hotspot mixture; destinations are displaced by a
// log-normal trip distance (median ≈ 2.2 km, matching the NYC yellow-taxi
// distance distribution) in a uniform direction, with a small fraction of
// long hotspot-to-hotspot trips. Short trips are what lets the TQ-tree
// store most entries deep in the hierarchy, as with the real data.
func TaxiTrips(c *City, n int, seed int64) []*trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Trajectory, n)
	const (
		medianTrip = 2200.0 // meters
		sigmaTrip  = 0.7    // log-space spread
	)
	for i := 0; i < n; i++ {
		src := c.Sample(rng)
		var dst geo.Point
		if rng.Float64() < 0.1 {
			// Occasional long cross-town trip to another hotspot.
			dst = c.Sample(rng)
		} else {
			dist := medianTrip * math.Exp(rng.NormFloat64()*sigmaTrip)
			dir := rng.Float64() * 2 * math.Pi
			dst = c.clamp(geo.Pt(
				src.X+math.Cos(dir)*dist,
				src.Y+math.Sin(dir)*dist,
			))
		}
		if src == dst {
			dst = c.clamp(dst.Add(50+rng.Float64()*100, 50+rng.Float64()*100))
		}
		out[i] = trajectory.MustNew(trajectory.ID(i), []geo.Point{src, dst})
	}
	return out
}

// Checkins generates n multipoint daily check-in sequences (the NYF
// stand-in): 2..maxPts stops hopping between nearby POIs.
func Checkins(c *City, n, maxPts int, seed int64) []*trajectory.Trajectory {
	if maxPts < 2 {
		maxPts = 2
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Trajectory, n)
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(maxPts-1)
		pts := make([]geo.Point, k)
		pts[0] = c.Sample(rng)
		for j := 1; j < k; j++ {
			// Next check-in: usually near the previous one (daily
			// check-ins are neighborhood-scale), occasionally a jump to
			// another hotspot.
			if rng.Float64() < 0.15 {
				pts[j] = c.Sample(rng)
			} else {
				pts[j] = c.clamp(geo.Pt(
					pts[j-1].X+rng.NormFloat64()*900,
					pts[j-1].Y+rng.NormFloat64()*900,
				))
			}
		}
		out[i] = trajectory.MustNew(trajectory.ID(i), pts)
	}
	return out
}

// GPSTraces generates n long correlated-random-walk traces (the BJG
// stand-in): minPts..maxPts points with persistent heading.
func GPSTraces(c *City, n, minPts, maxPts int, seed int64) []*trajectory.Trajectory {
	if minPts < 2 {
		minPts = 2
	}
	if maxPts < minPts {
		maxPts = minPts
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Trajectory, n)
	for i := 0; i < n; i++ {
		k := minPts + rng.Intn(maxPts-minPts+1)
		pts := make([]geo.Point, k)
		pts[0] = c.Sample(rng)
		heading := rng.Float64() * 2 * math.Pi
		for j := 1; j < k; j++ {
			heading += rng.NormFloat64() * 0.4
			step := 200 + rng.Float64()*400
			pts[j] = c.clamp(geo.Pt(
				pts[j-1].X+math.Cos(heading)*step,
				pts[j-1].Y+math.Sin(heading)*step,
			))
		}
		out[i] = trajectory.MustNew(trajectory.ID(i), pts)
	}
	return out
}

// BusRoutes generates nRoutes facility trajectories with stopsPerRoute
// stops each: a route starts at a hotspot, heads toward a sequence of
// other hotspots, and places stops at roughly 400 m spacing with jitter —
// mimicking a bus network threading activity centers.
func BusRoutes(c *City, nRoutes, stopsPerRoute int, seed int64) []*trajectory.Facility {
	if stopsPerRoute < 1 {
		stopsPerRoute = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Facility, nRoutes)
	for i := 0; i < nRoutes; i++ {
		out[i] = trajectory.MustNewFacility(trajectory.ID(i), busRoute(c, stopsPerRoute, rng))
	}
	return out
}

func busRoute(c *City, stops int, rng *rand.Rand) []geo.Point {
	const spacing = 400.0
	pts := make([]geo.Point, 0, stops)
	cur := c.Sample(rng)
	target := c.Sample(rng)
	pts = append(pts, cur)
	for len(pts) < stops {
		// Retarget when close, so long routes wander between hotspots.
		if cur.Dist(target) < 2*spacing {
			target = c.Sample(rng)
		}
		dx, dy := target.X-cur.X, target.Y-cur.Y
		d := math.Hypot(dx, dy)
		if d == 0 {
			target = c.uniform(rng)
			continue
		}
		step := spacing * (0.8 + rng.Float64()*0.4)
		cur = c.clamp(geo.Pt(
			cur.X+dx/d*step+rng.NormFloat64()*40,
			cur.Y+dy/d*step+rng.NormFloat64()*40,
		))
		pts = append(pts, cur)
	}
	return pts
}

// Paper-scale dataset cardinalities (Tables I and II). The harness scales
// these down with a fraction for time-boxed runs.
const (
	// NYTHalfDay .. NYT3Days are the taxi-trip axis values of Fig 6a/7a.
	NYTHalfDay = 203308
	NYT1Day    = 357139
	NYT2Days   = 697796
	NYT3Days   = 1032637
	// NYFTrajectories is the Foursquare check-in trajectory count.
	NYFTrajectories = 212751
	// BJGTrajectories is the Geolife trace count.
	BJGTrajectories = 30266
	// NYRoutes/NYStops and BJRoutes/BJStops are the facility datasets of
	// Table I.
	NYRoutes = 2024
	NYStops  = 16999
	BJRoutes = 1842
	BJStops  = 21489
)

// DefaultPsi is the distance threshold ψ used by the experiments: 300 m,
// a walkable access distance to a stop (the paper does not publish its
// value).
const DefaultPsi = 300.0
