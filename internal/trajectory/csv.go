package trajectory

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/trajcover/trajcover/internal/geo"
)

// Trajectory CSV format: one row per trajectory,
//
//	id,x1,y1,x2,y2,...
//
// Facilities use the same layout (id followed by stop coordinates).

// WriteCSV writes trajectories in the row-per-trajectory CSV format.
func WriteCSV(w io.Writer, ts []*Trajectory) error {
	cw := csv.NewWriter(w)
	for _, t := range ts {
		if err := cw.Write(pointRow(uint32(t.ID), t.Points)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads trajectories written by WriteCSV.
func ReadCSV(r io.Reader) ([]*Trajectory, error) {
	rows, err := readRows(r)
	if err != nil {
		return nil, err
	}
	out := make([]*Trajectory, 0, len(rows))
	for i, row := range rows {
		t, err := New(row.id, row.points)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i+1, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// WriteFacilitiesCSV writes facilities in the same row format.
func WriteFacilitiesCSV(w io.Writer, fs []*Facility) error {
	cw := csv.NewWriter(w)
	for _, f := range fs {
		if err := cw.Write(pointRow(uint32(f.ID), f.Stops)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFacilitiesCSV reads facilities written by WriteFacilitiesCSV.
func ReadFacilitiesCSV(r io.Reader) ([]*Facility, error) {
	rows, err := readRows(r)
	if err != nil {
		return nil, err
	}
	out := make([]*Facility, 0, len(rows))
	for i, row := range rows {
		f, err := NewFacility(row.id, row.points)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i+1, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func pointRow(id uint32, pts []geo.Point) []string {
	row := make([]string, 0, 1+2*len(pts))
	row = append(row, strconv.FormatUint(uint64(id), 10))
	for _, p := range pts {
		row = append(row,
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64))
	}
	return row
}

type parsedRow struct {
	id     ID
	points []geo.Point
}

func readRows(r io.Reader) ([]parsedRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // variable-length rows
	var out []parsedRow
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if len(rec) < 3 || len(rec)%2 == 0 {
			return nil, fmt.Errorf("trajectory: row %d has %d fields, want odd count >= 3", line, len(rec))
		}
		id64, err := strconv.ParseUint(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trajectory: row %d id: %w", line, err)
		}
		pts := make([]geo.Point, 0, (len(rec)-1)/2)
		for i := 1; i < len(rec); i += 2 {
			x, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("trajectory: row %d field %d: %w", line, i, err)
			}
			y, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trajectory: row %d field %d: %w", line, i+1, err)
			}
			pts = append(pts, geo.Point{X: x, Y: y})
		}
		out = append(out, parsedRow{id: ID(id64), points: pts})
	}
}
