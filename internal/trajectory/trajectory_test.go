package trajectory

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/trajcover/trajcover/internal/geo"
)

func TestNewComputesGeometry(t *testing.T) {
	tr, err := New(7, []geo.Point{geo.Pt(0, 0), geo.Pt(3, 4), geo.Pt(3, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.NumSegments() != 2 {
		t.Errorf("Len,NumSegments = %d,%d want 3,2", tr.Len(), tr.NumSegments())
	}
	if math.Abs(tr.Length()-11) > 1e-12 {
		t.Errorf("Length = %v, want 11", tr.Length())
	}
	if tr.Source() != geo.Pt(0, 0) || tr.Dest() != geo.Pt(3, 10) {
		t.Errorf("Source/Dest = %v/%v", tr.Source(), tr.Dest())
	}
	want := geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 10}
	if tr.MBR() != want {
		t.Errorf("MBR = %v, want %v", tr.MBR(), want)
	}
	if math.Abs(tr.SegmentLength(0)-5) > 1e-12 {
		t.Errorf("SegmentLength(0) = %v, want 5", tr.SegmentLength(0))
	}
}

func TestNewRejectsShort(t *testing.T) {
	if _, err := New(1, []geo.Point{geo.Pt(0, 0)}); !errors.Is(err, ErrTooShort) {
		t.Errorf("1-point trajectory error = %v, want ErrTooShort", err)
	}
	if _, err := New(1, nil); !errors.Is(err, ErrTooShort) {
		t.Errorf("empty trajectory error = %v, want ErrTooShort", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid input")
		}
	}()
	MustNew(1, nil)
}

func TestFacility(t *testing.T) {
	f, err := NewFacility(3, []geo.Point{geo.Pt(1, 1), geo.Pt(5, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d, want 2", f.Len())
	}
	if f.MBR() != (geo.Rect{MinX: 1, MinY: 1, MaxX: 5, MaxY: 9}) {
		t.Errorf("MBR = %v", f.MBR())
	}
	e := f.EMBR(2)
	if e != (geo.Rect{MinX: -1, MinY: -1, MaxX: 7, MaxY: 11}) {
		t.Errorf("EMBR = %v", e)
	}
	if _, err := NewFacility(4, nil); err == nil {
		t.Error("NewFacility accepted empty stops")
	}
}

func TestSet(t *testing.T) {
	a := MustNew(1, []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)})
	b := MustNew(2, []geo.Point{geo.Pt(5, 5), geo.Pt(9, 9), geo.Pt(10, 10)})
	s, err := NewSet([]*Trajectory{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.ByID(2) != b || s.ByID(1) != a {
		t.Error("ByID lookup broken")
	}
	if s.ByID(99) != nil {
		t.Error("ByID(99) should be nil")
	}
	if s.TotalPoints() != 5 {
		t.Errorf("TotalPoints = %d, want 5", s.TotalPoints())
	}
	bounds, ok := s.Bounds()
	if !ok || bounds != (geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}) {
		t.Errorf("Bounds = %v,%v", bounds, ok)
	}
}

func TestSetRejectsDuplicateIDs(t *testing.T) {
	a := MustNew(1, []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)})
	b := MustNew(1, []geo.Point{geo.Pt(2, 2), geo.Pt(3, 3)})
	if _, err := NewSet([]*Trajectory{a, b}); err == nil {
		t.Error("NewSet accepted duplicate IDs")
	}
}

func TestSetAddRemove(t *testing.T) {
	s := MustNewSet(nil)
	a := MustNew(1, []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)})
	b := MustNew(2, []geo.Point{geo.Pt(2, 2), geo.Pt(3, 3)})
	if err := s.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(a); err == nil {
		t.Error("duplicate Add accepted")
	}
	if !s.Remove(1) {
		t.Error("Remove(1) failed")
	}
	if s.Remove(1) {
		t.Error("second Remove(1) succeeded")
	}
	if s.Len() != 1 || s.ByID(1) != nil || s.ByID(2) != b {
		t.Errorf("set state wrong after remove: len=%d", s.Len())
	}
	if !s.Remove(2) || s.Len() != 0 {
		t.Error("Remove(2) failed")
	}
	// Re-adding after removal must work.
	if err := s.Add(a); err != nil {
		t.Errorf("re-Add after Remove: %v", err)
	}
}

func TestEmptySetBounds(t *testing.T) {
	s := MustNewSet(nil)
	if _, ok := s.Bounds(); ok {
		t.Error("empty set reported bounds")
	}
}

func TestCSVRoundTripTrajectories(t *testing.T) {
	ts := []*Trajectory{
		MustNew(1, []geo.Point{geo.Pt(0.5, -1.25), geo.Pt(3, 4)}),
		MustNew(42, []geo.Point{geo.Pt(1, 2), geo.Pt(3, 4), geo.Pt(5, 6)}),
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d trajectories", len(back))
	}
	for i := range ts {
		if back[i].ID != ts[i].ID || back[i].Len() != ts[i].Len() {
			t.Errorf("row %d mismatch: %v vs %v", i, back[i], ts[i])
		}
		for j := range ts[i].Points {
			if back[i].Points[j] != ts[i].Points[j] {
				t.Errorf("row %d point %d: %v vs %v", i, j, back[i].Points[j], ts[i].Points[j])
			}
		}
	}
}

func TestCSVRoundTripFacilities(t *testing.T) {
	fs := []*Facility{
		MustNewFacility(7, []geo.Point{geo.Pt(1, 1), geo.Pt(2, 2), geo.Pt(3, 1)}),
	}
	var buf bytes.Buffer
	if err := WriteFacilitiesCSV(&buf, fs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFacilitiesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID != 7 || back[0].Len() != 3 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	// Random trajectories survive a write/read cycle exactly
	// (coordinates use %g full precision).
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(count)%20
		ts := make([]*Trajectory, n)
		for i := range ts {
			pts := make([]geo.Point, 2+rng.Intn(6))
			for j := range pts {
				pts[j] = geo.Pt(rng.NormFloat64()*1e5, rng.NormFloat64()*1e5)
			}
			ts[i] = MustNew(ID(i), pts)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ts); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil || len(back) != n {
			return false
		}
		for i := range ts {
			if back[i].ID != ts[i].ID || back[i].Len() != ts[i].Len() {
				return false
			}
			for j := range ts[i].Points {
				if back[i].Points[j] != ts[i].Points[j] {
					return false
				}
			}
			if math.Abs(back[i].Length()-ts[i].Length()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"1,2\n",       // even field count
		"1\n",         // too few fields
		"x,1,2,3,4\n", // bad id
		"1,a,2,3,4\n", // bad coordinate
		"1,1,2\n",     // single point: New rejects
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV accepted %q", in)
		}
	}
}
