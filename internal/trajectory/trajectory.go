// Package trajectory defines the data model shared by every index and
// query in the library: user trajectories (sequences of visited points)
// and facility trajectories (routes with stop points, e.g. bus routes).
package trajectory

import (
	"errors"
	"fmt"

	"github.com/trajcover/trajcover/internal/geo"
)

// ID identifies a trajectory within its dataset.
type ID uint32

// ErrTooShort is returned when constructing a trajectory with fewer than
// two points; every query in this library is defined over source →
// destination movements, so single-point "trajectories" are rejected.
var ErrTooShort = errors.New("trajectory: need at least 2 points")

// Trajectory is a user trajectory: an ordered sequence of at least two
// point locations. Construct with New so the cached geometry (length, MBR)
// is consistent with Points; treat Points as read-only afterwards.
type Trajectory struct {
	ID     ID
	Points []geo.Point

	length float64
	mbr    geo.Rect
}

// New builds a Trajectory and precomputes its length and bounding box.
func New(id ID, points []geo.Point) (*Trajectory, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("%w (id %d has %d)", ErrTooShort, id, len(points))
	}
	t := &Trajectory{ID: id, Points: points}
	t.mbr = geo.RectOf(points)
	for i := 1; i < len(points); i++ {
		t.length += points[i-1].Dist(points[i])
	}
	return t, nil
}

// MustNew is New but panics on error; intended for tests and generators
// that construct trajectories from known-valid data.
func MustNew(id ID, points []geo.Point) *Trajectory {
	t, err := New(id, points)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of points.
func (t *Trajectory) Len() int { return len(t.Points) }

// NumSegments returns the number of segments (Len-1).
func (t *Trajectory) NumSegments() int { return len(t.Points) - 1 }

// Source returns the first point.
func (t *Trajectory) Source() geo.Point { return t.Points[0] }

// Dest returns the last point.
func (t *Trajectory) Dest() geo.Point { return t.Points[len(t.Points)-1] }

// Length returns the total polyline length.
func (t *Trajectory) Length() float64 { return t.length }

// MBR returns the minimum bounding rectangle of the points.
func (t *Trajectory) MBR() geo.Rect { return t.mbr }

// SegmentLength returns the length of segment i (between points i and i+1).
func (t *Trajectory) SegmentLength(i int) float64 {
	return t.Points[i].Dist(t.Points[i+1])
}

// Facility is a candidate facility trajectory: a route identified by its
// ordered stop points (pick-up/drop-off locations). Construct with
// NewFacility; treat Stops as read-only afterwards.
type Facility struct {
	ID    ID
	Stops []geo.Point

	mbr geo.Rect
}

// NewFacility builds a Facility and precomputes its bounding box. A
// facility needs at least one stop.
func NewFacility(id ID, stops []geo.Point) (*Facility, error) {
	if len(stops) == 0 {
		return nil, fmt.Errorf("trajectory: facility %d has no stops", id)
	}
	return &Facility{ID: id, Stops: stops, mbr: geo.RectOf(stops)}, nil
}

// MustNewFacility is NewFacility but panics on error.
func MustNewFacility(id ID, stops []geo.Point) *Facility {
	f, err := NewFacility(id, stops)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of stops.
func (f *Facility) Len() int { return len(f.Stops) }

// MBR returns the minimum bounding rectangle of the stops.
func (f *Facility) MBR() geo.Rect { return f.mbr }

// EMBR returns the extended MBR: the stop MBR grown by the distance
// threshold psi. Any user point servable by f lies inside EMBR(psi).
func (f *Facility) EMBR(psi float64) geo.Rect { return f.mbr.Expand(psi) }

// Set is an ordered collection of user trajectories with ID lookup.
type Set struct {
	All  []*Trajectory
	byID map[ID]*Trajectory
}

// NewSet builds a Set from trajectories; duplicate IDs are rejected.
func NewSet(ts []*Trajectory) (*Set, error) {
	s := &Set{All: ts, byID: make(map[ID]*Trajectory, len(ts))}
	for _, t := range ts {
		if _, dup := s.byID[t.ID]; dup {
			return nil, fmt.Errorf("trajectory: duplicate id %d", t.ID)
		}
		s.byID[t.ID] = t
	}
	return s, nil
}

// MustNewSet is NewSet but panics on error.
func MustNewSet(ts []*Trajectory) *Set {
	s, err := NewSet(ts)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of trajectories in the set.
func (s *Set) Len() int { return len(s.All) }

// Add appends a trajectory to the set; duplicate IDs are rejected.
func (s *Set) Add(t *Trajectory) error {
	if _, dup := s.byID[t.ID]; dup {
		return fmt.Errorf("trajectory: duplicate id %d", t.ID)
	}
	s.All = append(s.All, t)
	s.byID[t.ID] = t
	return nil
}

// Remove deletes the trajectory with the given id, reporting whether it
// was present. Order of All is not preserved (swap-delete).
func (s *Set) Remove(id ID) bool {
	if _, ok := s.byID[id]; !ok {
		return false
	}
	delete(s.byID, id)
	for i, t := range s.All {
		if t.ID == id {
			last := len(s.All) - 1
			s.All[i] = s.All[last]
			s.All[last] = nil
			s.All = s.All[:last]
			return true
		}
	}
	return false
}

// ByID returns the trajectory with the given id, or nil.
func (s *Set) ByID(id ID) *Trajectory { return s.byID[id] }

// Bounds returns the MBR of every trajectory in the set; ok is false for
// an empty set.
func (s *Set) Bounds() (geo.Rect, bool) {
	if len(s.All) == 0 {
		return geo.Rect{}, false
	}
	r := s.All[0].MBR()
	for _, t := range s.All[1:] {
		r = r.ExtendRect(t.MBR())
	}
	return r, true
}

// TotalPoints returns the total number of points across the set.
func (s *Set) TotalPoints() int {
	n := 0
	for _, t := range s.All {
		n += t.Len()
	}
	return n
}
