// Package trajectory defines the data model shared by every index and
// query in the library: user trajectories (sequences of visited points)
// and facility trajectories (routes with stop points, e.g. bus routes).
package trajectory

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"github.com/trajcover/trajcover/internal/geo"
)

// ID identifies a trajectory within its dataset.
type ID uint32

// ErrTooShort is returned when constructing a trajectory with fewer than
// two points; every query in this library is defined over source →
// destination movements, so single-point "trajectories" are rejected.
var ErrTooShort = errors.New("trajectory: need at least 2 points")

// Trajectory is a user trajectory: an ordered sequence of at least two
// point locations. Construct with New so the cached geometry (length, MBR)
// is consistent with Points; treat Points as read-only afterwards.
type Trajectory struct {
	ID     ID
	Points []geo.Point

	length float64
	mbr    geo.Rect

	// pin, when non-nil, keeps the backing store of Points reachable: a
	// trajectory restored from a mapped snapshot aliases its points onto
	// the file mapping, and the mapping's release is driven by a
	// finalizer on the pinned token. Heap trajectories leave it nil.
	pin any
}

// New builds a Trajectory and precomputes its length and bounding box.
func New(id ID, points []geo.Point) (*Trajectory, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("%w (id %d has %d)", ErrTooShort, id, len(points))
	}
	t := &Trajectory{ID: id, Points: points}
	t.mbr = geo.RectOf(points)
	for i := 1; i < len(points); i++ {
		t.length += points[i-1].Dist(points[i])
	}
	return t, nil
}

// FromParts builds a Trajectory adopting a precomputed length and MBR
// instead of deriving them from the points — the mapped-snapshot restore
// path, where points alias a checksummed file mapping and the cached
// geometry was recorded by the writer (which computed it with the same
// arithmetic New uses, so the values are bit-equal). pin, when non-nil,
// is retained for the life of the trajectory; see Trajectory.pin.
func FromParts(id ID, points []geo.Point, length float64, mbr geo.Rect, pin any) (*Trajectory, error) {
	t := new(Trajectory)
	if err := FromPartsInto(t, id, points, length, mbr, pin); err != nil {
		return nil, err
	}
	return t, nil
}

// FromPartsInto is FromParts writing into caller-provided storage
// instead of allocating: restore paths batch-allocate their
// trajectories in one arena, which is most of the difference between
// a mapped open and a heap restore at scale.
func FromPartsInto(dst *Trajectory, id ID, points []geo.Point, length float64, mbr geo.Rect, pin any) error {
	if len(points) < 2 {
		return fmt.Errorf("%w (id %d has %d)", ErrTooShort, id, len(points))
	}
	dst.ID = id
	dst.Points = points
	dst.length = length
	dst.mbr = mbr
	dst.pin = pin
	return nil
}

// MustNew is New but panics on error; intended for tests and generators
// that construct trajectories from known-valid data.
func MustNew(id ID, points []geo.Point) *Trajectory {
	t, err := New(id, points)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of points.
func (t *Trajectory) Len() int { return len(t.Points) }

// NumSegments returns the number of segments (Len-1).
func (t *Trajectory) NumSegments() int { return len(t.Points) - 1 }

// Source returns the first point.
func (t *Trajectory) Source() geo.Point { return t.Points[0] }

// Dest returns the last point.
func (t *Trajectory) Dest() geo.Point { return t.Points[len(t.Points)-1] }

// Length returns the total polyline length.
func (t *Trajectory) Length() float64 { return t.length }

// MBR returns the minimum bounding rectangle of the points.
func (t *Trajectory) MBR() geo.Rect { return t.mbr }

// SegmentLength returns the length of segment i (between points i and i+1).
func (t *Trajectory) SegmentLength(i int) float64 {
	return t.Points[i].Dist(t.Points[i+1])
}

// Facility is a candidate facility trajectory: a route identified by its
// ordered stop points (pick-up/drop-off locations). Construct with
// NewFacility; treat Stops as read-only afterwards.
type Facility struct {
	ID    ID
	Stops []geo.Point

	mbr geo.Rect
}

// NewFacility builds a Facility and precomputes its bounding box. A
// facility needs at least one stop.
func NewFacility(id ID, stops []geo.Point) (*Facility, error) {
	if len(stops) == 0 {
		return nil, fmt.Errorf("trajectory: facility %d has no stops", id)
	}
	return &Facility{ID: id, Stops: stops, mbr: geo.RectOf(stops)}, nil
}

// MustNewFacility is NewFacility but panics on error.
func MustNewFacility(id ID, stops []geo.Point) *Facility {
	f, err := NewFacility(id, stops)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of stops.
func (f *Facility) Len() int { return len(f.Stops) }

// MBR returns the minimum bounding rectangle of the stops.
func (f *Facility) MBR() geo.Rect { return f.mbr }

// EMBR returns the extended MBR: the stop MBR grown by the distance
// threshold psi. Any user point servable by f lies inside EMBR(psi).
func (f *Facility) EMBR(psi float64) geo.Rect { return f.mbr.Expand(psi) }

// Set is an ordered collection of user trajectories with ID lookup.
type Set struct {
	All  []*Trajectory
	byID map[ID]*Trajectory

	// lazy builds byID on first lookup for sets constructed with
	// NewSetLazy: restore paths validate uniqueness with a sort pass
	// (cheaper than a map build) and defer the map until someone
	// actually asks for ID lookup — often never for a frozen serving
	// index, and a measurable slice of a mapped open when they do.
	lazy sync.Once
}

// NewSet builds a Set from trajectories; duplicate IDs are rejected.
func NewSet(ts []*Trajectory) (*Set, error) {
	s := &Set{All: ts, byID: make(map[ID]*Trajectory, len(ts))}
	for _, t := range ts {
		if _, dup := s.byID[t.ID]; dup {
			return nil, fmt.Errorf("trajectory: duplicate id %d", t.ID)
		}
		s.byID[t.ID] = t
	}
	return s, nil
}

// NewSetLazy is NewSet with the ID map deferred to first lookup.
// Duplicate IDs are still rejected here — with a bitmap pass when the
// ID space is dense (the overwhelmingly common 0..n-1 corpus, and far
// cheaper than a map build) or a sorted scratch copy otherwise — so a
// corrupt snapshot fails at open, not at first query. Mutating methods
// (Add, Remove) remain valid: they materialize the map first.
func NewSetLazy(ts []*Trajectory) (*Set, error) {
	var maxID uint32
	for _, t := range ts {
		if uint32(t.ID) > maxID {
			maxID = uint32(t.ID)
		}
	}
	if uint64(maxID) <= 8*uint64(len(ts))+64 {
		seen := make([]uint64, maxID/64+1)
		for _, t := range ts {
			w, b := t.ID/64, uint(t.ID%64)
			if seen[w]&(1<<b) != 0 {
				return nil, fmt.Errorf("trajectory: duplicate id %d", t.ID)
			}
			seen[w] |= 1 << b
		}
	} else {
		ids := make([]uint32, len(ts))
		for i, t := range ts {
			ids[i] = uint32(t.ID)
		}
		slices.Sort(ids)
		for i := 1; i < len(ids); i++ {
			if ids[i] == ids[i-1] {
				return nil, fmt.Errorf("trajectory: duplicate id %d", ids[i])
			}
		}
	}
	return &Set{All: ts}, nil
}

// idMap returns the ID index, building it on first use for lazy sets.
// Concurrent lookups are safe (sync.Once); mutators are exclusive with
// lookups by the callers' locking, as before.
func (s *Set) idMap() map[ID]*Trajectory {
	s.lazy.Do(func() {
		if s.byID == nil {
			m := make(map[ID]*Trajectory, len(s.All))
			for _, t := range s.All {
				m[t.ID] = t
			}
			s.byID = m
		}
	})
	return s.byID
}

// MustNewSet is NewSet but panics on error.
func MustNewSet(ts []*Trajectory) *Set {
	s, err := NewSet(ts)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of trajectories in the set.
func (s *Set) Len() int { return len(s.All) }

// Add appends a trajectory to the set; duplicate IDs are rejected.
func (s *Set) Add(t *Trajectory) error {
	m := s.idMap()
	if _, dup := m[t.ID]; dup {
		return fmt.Errorf("trajectory: duplicate id %d", t.ID)
	}
	s.All = append(s.All, t)
	m[t.ID] = t
	return nil
}

// Remove deletes the trajectory with the given id, reporting whether it
// was present. Order of All is not preserved (swap-delete).
func (s *Set) Remove(id ID) bool {
	m := s.idMap()
	if _, ok := m[id]; !ok {
		return false
	}
	delete(m, id)
	for i, t := range s.All {
		if t.ID == id {
			last := len(s.All) - 1
			s.All[i] = s.All[last]
			s.All[last] = nil
			s.All = s.All[:last]
			return true
		}
	}
	return false
}

// ByID returns the trajectory with the given id, or nil.
func (s *Set) ByID(id ID) *Trajectory { return s.idMap()[id] }

// Bounds returns the MBR of every trajectory in the set; ok is false for
// an empty set.
func (s *Set) Bounds() (geo.Rect, bool) {
	if len(s.All) == 0 {
		return geo.Rect{}, false
	}
	r := s.All[0].MBR()
	for _, t := range s.All[1:] {
		r = r.ExtendRect(t.MBR())
	}
	return r, true
}

// TotalPoints returns the total number of points across the set.
func (s *Set) TotalPoints() int {
	n := 0
	for _, t := range s.All {
		n += t.Len()
	}
	return n
}
