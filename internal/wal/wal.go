// Package wal is the durability layer under the live serving path: a
// write-ahead log of Insert/Delete records appended to rotating segment
// files, replayed on boot, and truncated at checkpoints. It follows the
// segment-file + replay-on-boot design of Grafana Tempo's tempodb/wal,
// adapted to trajectory records and the CRC framing idiom of the
// snapshot formats.
//
// Layout: a WAL directory holds numbered segment files
//
//	wal-00000001.seg
//	wal-00000002.seg
//	...
//
// Each segment starts with an 16-byte header (8-byte magic "TQWAL001",
// uint64 segment index) followed by records framed as
//
//	uint32 payloadLen | uint32 CRC32(payload) | payload
//
// where a payload is one op byte (opInsert/opDelete) plus the trajectory
// encoding shared with the snapshot formats (uint32 id, uint32 npts,
// float64 x/y pairs) for inserts, or a uint32 id for deletes.
//
// Recovery contract (the torn-tail rule): a truncated or CRC-corrupt
// FINAL record of the FINAL segment is a torn tail — the crash landed
// mid-append — and is silently dropped. Any earlier framing or CRC
// failure means bytes the log previously claimed durable are gone, and
// replay fails hard rather than serving a silently wrong corpus.
//
// Write path: appends are serialized by the caller (the live index's
// writer lock), buffered, and made durable per the configured
// SyncPolicy. SyncAlways acknowledges a record only after an fsync
// covering it — Append returns an LSN and WaitDurable(lsn) blocks until
// durable, with a group commit: every waiter piled up behind one fsync
// is released by it, so the fsync cost amortizes across concurrent
// writers. SyncInterval fsyncs on a background ticker; SyncNone leaves
// durability to the OS page cache.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/trajcover/trajcover/internal/faultfs"
	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Magic opens every segment file.
var Magic = [8]byte{'T', 'Q', 'W', 'A', 'L', '0', '0', '1'}

// ErrCorrupt marks a segment whose framing or checksum fails before the
// final record — replay cannot trust anything at or past the failure.
var ErrCorrupt = errors.New("wal: corrupt segment")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended records become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging a write (group commit).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery).
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes at its leisure.
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or none)", s)
}

// Options tunes a log. The zero value syncs on every acknowledged write
// and rotates segments at 64 MiB.
type Options struct {
	// Sync selects the durability policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (<= 0: 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates to a fresh segment once the current one
	// grows past this size (<= 0: 64 MiB).
	SegmentBytes int64
	// FS is the filesystem all segment IO goes through (nil: the real
	// OS). Tests inject a faultfs.Injector here to script disk faults.
	FS faultfs.FS
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	o.FS = faultfs.OrOS(o.FS)
	return o
}

// Op is a record's operation kind.
type Op byte

const (
	// OpInsert records an acknowledged Insert; the payload carries the
	// full trajectory.
	OpInsert Op = 1
	// OpDelete records an acknowledged Delete; the payload carries the id.
	OpDelete Op = 2
)

// Record is one logical write. Trajectory is set for OpInsert, ID for
// OpDelete (an insert's ID is Trajectory.ID).
type Record struct {
	Op         Op
	Trajectory *trajectory.Trajectory
	ID         trajectory.ID
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Records counts appends accepted since Open (replayed records are
	// not re-counted).
	Records uint64
	// Segments is the number of live segment files.
	Segments int
	// Bytes is the total size of all live segments as appended (buffered
	// bytes included).
	Bytes int64
	// Fsyncs counts explicit fsync calls on segment files.
	Fsyncs uint64
	// MaxFsyncNanos is the slowest observed fsync.
	MaxFsyncNanos int64
	// FirstSegment and LastSegment bound the live segment indexes.
	FirstSegment, LastSegment uint64
}

// Log is an open write-ahead log positioned for appending. Append is
// safe for one caller at a time (the live index's writer lock provides
// that); WaitDurable, Stats, and Rotate are safe concurrently.
type Log struct {
	dir  string
	opts Options
	fs   faultfs.FS

	// mu guards the segment file, buffer, and append state.
	mu       sync.Mutex
	f        faultfs.File
	w        *bufio.Writer
	seg      uint64 // current segment index
	segBytes int64  // bytes appended to the current segment
	first    uint64 // oldest live segment index
	segSizes map[uint64]int64
	appended uint64 // LSN of the last buffered record
	closed   bool

	// Group-commit state (smu): durable is the highest LSN covered by a
	// completed fsync; syncing marks an fsync in flight; failed wedges
	// the log after an IO error — no later write may be acknowledged.
	smu     sync.Mutex
	scond   *sync.Cond
	durable uint64
	syncing bool
	failed  error

	stopTicker chan struct{}
	tickerDone chan struct{}
	closeOnce  sync.Once

	records  atomic.Uint64
	fsyncs   atomic.Uint64
	maxFsync atomic.Int64
}

// segmentName formats a segment file name.
func segmentName(idx uint64) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (uint64, bool) {
	var idx uint64
	if _, err := fmt.Sscanf(name, "wal-%d.seg", &idx); err != nil {
		return 0, false
	}
	if name != segmentName(idx) {
		return 0, false
	}
	return idx, true
}

// ListSegments returns the live segment indexes in dir, sorted.
func ListSegments(dir string) ([]uint64, error) {
	return listSegments(faultfs.OS, dir)
}

func listSegments(fsys faultfs.FS, dir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if idx, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Replay reads every record of every segment in dir in order, calling
// apply for each. A torn tail (truncated or CRC-corrupt final record of
// the final segment) is reported via torn and otherwise ignored; any
// earlier failure returns ErrCorrupt. A directory with no segments
// replays zero records.
func Replay(dir string, apply func(Record) error) (n int, torn bool, err error) {
	return ReplayFrom(dir, 0, apply)
}

// ReplayFrom is Replay restricted to segments with index >= from — the
// recovery path after a checkpoint cut at `from`: pre-cut segments are
// covered by the checkpoint snapshot (they linger only when a crash hit
// between the checkpoint rename and the segment removal) and are
// skipped. A positive `from` must name an existing segment: the cut
// segment is created by the checkpoint's rotation and only ever removed
// by a LATER checkpoint, so its absence means lost history.
func ReplayFrom(dir string, from uint64, apply func(Record) error) (n int, torn bool, err error) {
	all, err := ListSegments(dir)
	if err != nil {
		return 0, false, err
	}
	segs := all[:0:0]
	for _, idx := range all {
		if idx >= from {
			segs = append(segs, idx)
		}
	}
	if from > 0 && (len(segs) == 0 || segs[0] != from) {
		return 0, false, fmt.Errorf("%w: checkpoint cut segment %d missing", ErrCorrupt, from)
	}
	for i, idx := range segs {
		if i > 0 && idx != segs[i-1]+1 {
			return n, false, fmt.Errorf("%w: segment gap %d -> %d", ErrCorrupt, segs[i-1], idx)
		}
		final := i == len(segs)-1
		sn, st, err := replaySegment(filepath.Join(dir, segmentName(idx)), idx, final, apply)
		n += sn
		if err != nil {
			return n, false, err
		}
		if st {
			torn = true
		}
	}
	return n, torn, nil
}

// replaySegment reads one segment. final marks the last live segment —
// the only place a torn tail is legal.
func replaySegment(path string, idx uint64, final bool, apply func(Record) error) (int, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// Even the header is torn-tail territory: a crash can die between
		// creating a rotated segment and writing its header.
		if final {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("%w: segment %d: truncated header", ErrCorrupt, idx)
	}
	if [8]byte(hdr[:8]) != Magic {
		return 0, false, fmt.Errorf("%w: segment %d: bad magic", ErrCorrupt, idx)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != idx {
		return 0, false, fmt.Errorf("%w: segment %d: header names segment %d", ErrCorrupt, idx, got)
	}

	n := 0
	for {
		var frame [8]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return n, false, nil // clean end of segment
			}
			// Partial frame header.
			if final {
				return n, true, nil
			}
			return n, false, fmt.Errorf("%w: segment %d: truncated record frame after %d records", ErrCorrupt, idx, n)
		}
		payloadLen := binary.LittleEndian.Uint32(frame[:4])
		wantCRC := binary.LittleEndian.Uint32(frame[4:])
		if payloadLen == 0 || payloadLen > maxRecordBytes {
			if final && peekEOF(br) {
				return n, true, nil // a torn length field at the very tail
			}
			return n, false, fmt.Errorf("%w: segment %d: implausible record length %d", ErrCorrupt, idx, payloadLen)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if final {
				return n, true, nil
			}
			return n, false, fmt.Errorf("%w: segment %d: truncated record payload after %d records", ErrCorrupt, idx, n)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			// A CRC failure is a tolerated torn tail only when it is the
			// very last record on disk; a mismatch with more bytes behind
			// it is corruption of data the log had claimed durable.
			if final && peekEOF(br) {
				return n, true, nil
			}
			return n, false, fmt.Errorf("%w: segment %d: record %d checksum mismatch", ErrCorrupt, idx, n)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			if final && peekEOF(br) {
				return n, true, nil
			}
			return n, false, fmt.Errorf("%w: segment %d: record %d: %v", ErrCorrupt, idx, n, err)
		}
		if err := apply(rec); err != nil {
			return n, false, err
		}
		n++
	}
}

// peekEOF reports whether the reader has no bytes left.
func peekEOF(br *bufio.Reader) bool {
	_, err := br.Peek(1)
	return err == io.EOF
}

// maxRecordBytes bounds one record so a corrupt length field fails fast
// instead of attempting an absurd allocation: a trajectory record is
// 1 + 4 + 4 + 16*npts bytes and npts is capped like the snapshot codec.
const maxRecordBytes = 1 + 4 + 4 + 16*(1<<24)

// encodeRecord appends rec's payload encoding to buf.
func encodeRecord(buf []byte, rec Record) ([]byte, error) {
	switch rec.Op {
	case OpInsert:
		u := rec.Trajectory
		if u == nil {
			return nil, errors.New("wal: insert record without trajectory")
		}
		buf = append(buf, byte(OpInsert))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(u.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(u.Len()))
		for _, p := range u.Points {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
		}
		return buf, nil
	case OpDelete:
		buf = append(buf, byte(OpDelete))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.ID))
		return buf, nil
	}
	return nil, fmt.Errorf("wal: unknown op %d", rec.Op)
}

// decodeRecord inverts encodeRecord.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, errors.New("empty record")
	}
	switch Op(payload[0]) {
	case OpInsert:
		body := payload[1:]
		if len(body) < 8 {
			return Record{}, errors.New("short insert record")
		}
		id := binary.LittleEndian.Uint32(body[:4])
		npts := binary.LittleEndian.Uint32(body[4:8])
		if npts < 2 || npts > 1<<24 {
			return Record{}, fmt.Errorf("insert record with %d points", npts)
		}
		if uint64(len(body)) != 8+16*uint64(npts) {
			return Record{}, fmt.Errorf("insert record length %d does not match %d points", len(body), npts)
		}
		pts := make([]geo.Point, npts)
		for i := range pts {
			off := 8 + 16*i
			pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:]))
		}
		u, err := trajectory.New(trajectory.ID(id), pts)
		if err != nil {
			return Record{}, err
		}
		return Record{Op: OpInsert, Trajectory: u, ID: u.ID}, nil
	case OpDelete:
		if len(payload) != 5 {
			return Record{}, fmt.Errorf("delete record length %d", len(payload))
		}
		return Record{Op: OpDelete, ID: trajectory.ID(binary.LittleEndian.Uint32(payload[1:]))}, nil
	}
	return Record{}, fmt.Errorf("unknown op %d", payload[0])
}

// Open opens the log in dir for appending, creating the directory and
// the first segment as needed. Existing segments are left in place —
// replay them first with Replay — except a torn tail, which Open
// truncates away so the next append lands on a clean record boundary.
// Appends continue in a freshly rotated segment, never by seeking into
// an old one: replayed bytes are immutable history.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(opts.FS, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:        dir,
		opts:       opts,
		fs:         opts.FS,
		segSizes:   map[uint64]int64{},
		stopTicker: make(chan struct{}),
		tickerDone: make(chan struct{}),
	}
	l.scond = sync.NewCond(&l.smu)
	next := uint64(1)
	if len(segs) > 0 {
		l.first = segs[0]
		next = segs[len(segs)-1] + 1
		for _, idx := range segs {
			path := filepath.Join(dir, segmentName(idx))
			if idx == segs[len(segs)-1] {
				if err := truncateTornTail(opts.FS, path, idx); err != nil {
					return nil, err
				}
			}
			info, err := opts.FS.Stat(path)
			if err != nil {
				return nil, err
			}
			l.segSizes[idx] = info.Size()
		}
	} else {
		l.first = next
	}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		go l.syncLoop()
	} else {
		close(l.tickerDone)
	}
	return l, nil
}

// truncateTornTail scans the final segment and truncates it to the end
// of its last intact record, so a torn append cannot shadow future
// appends. Corruption before the tail is left for Replay to refuse.
func truncateTornTail(fsys faultfs.FS, path string, idx uint64) error {
	f, err := faultfs.Open(fsys, path)
	if err != nil {
		return err
	}
	good := int64(0)
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err == nil && [8]byte(hdr[:8]) == Magic {
		good = 16
		for {
			var frame [8]byte
			if _, err := io.ReadFull(br, frame[:]); err != nil {
				break
			}
			payloadLen := binary.LittleEndian.Uint32(frame[:4])
			wantCRC := binary.LittleEndian.Uint32(frame[4:])
			if payloadLen == 0 || payloadLen > maxRecordBytes {
				break
			}
			payload := make([]byte, payloadLen)
			if _, err := io.ReadFull(br, payload); err != nil {
				break
			}
			if crc32.ChecksumIEEE(payload) != wantCRC {
				break
			}
			good += 8 + int64(payloadLen)
		}
	}
	f.Close()
	info, err := fsys.Stat(path)
	if err != nil {
		return err
	}
	if info.Size() == good {
		return nil
	}
	if err := fsys.Truncate(path, good); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// openSegment creates and syncs segment idx and makes it current.
// Caller holds mu or has exclusive access.
func (l *Log) openSegment(idx uint64) error {
	path := filepath.Join(l.dir, segmentName(idx))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[:8], Magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], idx)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	// The header (and the directory entry) must be durable before any
	// record in this segment can be claimed durable.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.seg = idx
	l.segBytes = 16
	l.segSizes[idx] = 16
	return nil
}

// Append buffers one record and returns its LSN (1-based count of
// appends this process). The record is NOT durable until WaitDurable
// returns for that LSN (SyncAlways) or a background/interval sync
// covers it. Callers must serialize Append with each other; the live
// index's writer lock does.
func (l *Log) Append(rec Record) (uint64, error) {
	payload, err := encodeRecord(nil, rec)
	if err != nil {
		return 0, err
	}
	l.smu.Lock()
	failed := l.failed
	l.smu.Unlock()
	if failed != nil {
		return 0, failed
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.wedge(err)
			return 0, err
		}
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(frame[:]); err != nil {
		l.wedge(err)
		return 0, err
	}
	if _, err := l.w.Write(payload); err != nil {
		l.wedge(err)
		return 0, err
	}
	l.segBytes += int64(8 + len(payload))
	l.segSizes[l.seg] = l.segBytes
	l.appended++
	l.records.Add(1)
	return l.appended, nil
}

// wedge records a permanent IO failure: no later append or ack may
// succeed once bytes of unknown extent hit the disk.
func (l *Log) wedge(err error) {
	l.smu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.scond.Broadcast()
	l.smu.Unlock()
}

// WaitDurable blocks until every record up to lsn is durable per the
// sync policy. Under SyncAlways the caller either rides a sync already
// in flight or becomes the syncer for everything appended so far — the
// group commit. Under SyncInterval/SyncNone it returns immediately
// (durability is the ticker's/OS's job).
func (l *Log) WaitDurable(lsn uint64) error {
	if l.opts.Sync != SyncAlways {
		l.smu.Lock()
		defer l.smu.Unlock()
		return l.failed
	}
	l.smu.Lock()
	for {
		if l.failed != nil {
			err := l.failed
			l.smu.Unlock()
			return err
		}
		if l.durable >= lsn {
			l.smu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.scond.Wait()
	}
	l.syncing = true
	l.smu.Unlock()

	target, err := l.syncNow()

	l.smu.Lock()
	l.syncing = false
	if err != nil {
		if l.failed == nil {
			l.failed = err
		}
	} else if target > l.durable {
		l.durable = target
	}
	l.scond.Broadcast()
	l.smu.Unlock()
	return err
}

// syncNow flushes the buffer and fsyncs the current segment, returning
// the highest LSN the sync covers.
func (l *Log) syncNow() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	target := l.appended
	if err := l.w.Flush(); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	l.observeFsync(time.Since(start))
	return target, nil
}

func (l *Log) observeFsync(d time.Duration) {
	l.fsyncs.Add(1)
	ns := d.Nanoseconds()
	for {
		cur := l.maxFsync.Load()
		if ns <= cur || l.maxFsync.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// syncLoop is the SyncInterval ticker.
func (l *Log) syncLoop() {
	defer close(l.tickerDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stopTicker:
			return
		case <-t.C:
			if _, err := l.syncNow(); err != nil && !errors.Is(err, ErrClosed) {
				l.wedge(err)
				return
			}
		}
	}
}

// rotateLocked seals the current segment (flush + fsync) and opens the
// next. Caller holds mu.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.observeFsync(time.Since(start))
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(l.seg + 1)
}

// Rotate seals the current segment and starts a new one, returning the
// new segment's index — the checkpoint cut: records appended after
// Rotate land in segments >= the returned index. Call under the same
// exclusion as Append (the live index does, inside its writer lock).
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		l.wedge(err)
		return 0, err
	}
	return l.seg, nil
}

// RemoveBefore deletes every segment with index < cut — the truncation
// half of a checkpoint, called only after the checkpoint snapshot is
// durable.
func (l *Log) RemoveBefore(cut uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for idx := l.first; idx < cut && idx < l.seg; idx++ {
		if err := l.fs.Remove(filepath.Join(l.dir, segmentName(idx))); err != nil && !os.IsNotExist(err) {
			return err
		}
		delete(l.segSizes, idx)
	}
	if cut > l.first {
		l.first = cut
		if l.first > l.seg {
			l.first = l.seg
		}
	}
	return l.fs.SyncDir(l.dir)
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	var bytes int64
	for _, sz := range l.segSizes {
		bytes += sz
	}
	st := Stats{
		Segments:     len(l.segSizes),
		Bytes:        bytes,
		FirstSegment: l.first,
		LastSegment:  l.seg,
	}
	l.mu.Unlock()
	st.Records = l.records.Load()
	st.Fsyncs = l.fsyncs.Load()
	st.MaxFsyncNanos = l.maxFsync.Load()
	return st
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Err returns the error that wedged the log, or nil while it is
// healthy. A wedged log rejects every later append and ack; the owner
// is expected to stop writing through it, open a successor with Open
// (which verifies and truncates the torn tail), and resume there.
func (l *Log) Err() error {
	l.smu.Lock()
	defer l.smu.Unlock()
	return l.failed
}

// Close flushes, fsyncs, and closes the current segment and stops the
// background sync loop. Idempotent.
func (l *Log) Close() error {
	var firstErr error
	l.closeOnce.Do(func() {
		close(l.stopTicker)
		<-l.tickerDone
		l.mu.Lock()
		defer l.mu.Unlock()
		l.closed = true
		if err := l.w.Flush(); err != nil {
			firstErr = err
		}
		if err := l.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := l.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}
