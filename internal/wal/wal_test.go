package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// testTraj builds a deterministic trajectory for record id.
func testTraj(id uint32, npts int) *trajectory.Trajectory {
	pts := make([]geo.Point, npts)
	for i := range pts {
		pts[i] = geo.Point{X: float64(id)*10 + float64(i), Y: float64(id) - float64(i)*0.5}
	}
	return trajectory.MustNew(trajectory.ID(id), pts)
}

// testHistory is a small mixed insert/delete history.
func testHistory(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			recs = append(recs, Record{Op: OpDelete, ID: trajectory.ID(i - 2)})
		} else {
			recs = append(recs, Record{Op: OpInsert, Trajectory: testTraj(uint32(i), 2+i%7)})
		}
	}
	return recs
}

// appendAll opens a log in dir, appends recs, waits for durability, and
// closes it.
func appendAll(t *testing.T, dir string, opts Options, recs []Record) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// collect replays dir into a slice.
func collect(t *testing.T, dir string) ([]Record, bool) {
	t.Helper()
	var got []Record
	n, torn, err := Replay(dir, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != len(got) {
		t.Fatalf("replay count %d != %d records", n, len(got))
	}
	return got, torn
}

// assertRecordsEqual compares logical records.
func assertRecordsEqual(t *testing.T, want, got []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Op != g.Op {
			t.Fatalf("record %d: op %d != %d", i, g.Op, w.Op)
		}
		switch w.Op {
		case OpDelete:
			if g.ID != w.ID {
				t.Fatalf("record %d: id %d != %d", i, g.ID, w.ID)
			}
		case OpInsert:
			if g.Trajectory.ID != w.Trajectory.ID || g.Trajectory.Len() != w.Trajectory.Len() {
				t.Fatalf("record %d: trajectory mismatch", i)
			}
			for j, p := range w.Trajectory.Points {
				if g.Trajectory.Points[j] != p {
					t.Fatalf("record %d point %d: %v != %v", i, j, g.Trajectory.Points[j], p)
				}
			}
		}
	}
}

// TestAppendReplayRoundTrip: every record written comes back verbatim,
// in order, across every sync policy.
func TestAppendReplayRoundTrip(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			recs := testHistory(40)
			appendAll(t, dir, Options{Sync: pol, SyncEvery: time.Millisecond}, recs)
			got, torn := collect(t, dir)
			if torn {
				t.Fatal("clean log reported torn tail")
			}
			assertRecordsEqual(t, recs, got)
		})
	}
}

// TestSegmentRotation: a tiny segment budget rotates files; replay
// stitches them back together in order, and stats see every segment.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	recs := testHistory(60)
	appendAll(t, dir, Options{SegmentBytes: 512}, recs)
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected >= 3 segments at 512-byte budget, got %d", len(segs))
	}
	got, torn := collect(t, dir)
	if torn {
		t.Fatal("unexpected torn tail")
	}
	assertRecordsEqual(t, recs, got)
}

// TestReopenAppendsNewSegment: reopening appends to a fresh segment and
// replay sees old + new records in order.
func TestReopenAppendsNewSegment(t *testing.T) {
	dir := t.TempDir()
	recs := testHistory(20)
	appendAll(t, dir, Options{}, recs[:10])
	appendAll(t, dir, Options{}, recs[10:])
	got, torn := collect(t, dir)
	if torn {
		t.Fatal("unexpected torn tail")
	}
	assertRecordsEqual(t, recs, got)
}

// lastSegmentPath returns the path of the final live segment.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, segmentName(segs[len(segs)-1]))
}

// TestTornTailTruncationTolerated: every truncation of the final
// segment replays as a clean prefix of the history (dropping the torn
// record), never an error, never a panic.
func TestTornTailTruncationTolerated(t *testing.T) {
	dir := t.TempDir()
	recs := testHistory(12)
	appendAll(t, dir, Options{}, recs)
	path := lastSegmentPath(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(orig) - 1; cut >= 0; cut-- {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		_, torn, err := Replay(dir, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut %d: replay error %v (truncated tails must be tolerated)", cut, err)
		}
		if cut < len(orig) && !torn && n != len(recs) {
			// Cuts on exact record boundaries legitimately read as clean
			// shorter logs; anything else must be flagged torn.
			if !isRecordBoundary(orig, cut) {
				t.Fatalf("cut %d: %d records, not flagged torn", cut, n)
			}
		}
		if n > len(recs) {
			t.Fatalf("cut %d: replayed %d > %d records", cut, n, len(recs))
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}

// isRecordBoundary reports whether offset cut in a segment file falls
// exactly between records (or at the header end).
func isRecordBoundary(data []byte, cut int) bool {
	off := 16
	if cut == off || cut == 0 {
		return true
	}
	for off < len(data) {
		if off+8 > len(data) {
			return false
		}
		payloadLen := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 8 + payloadLen
		if cut == off {
			return true
		}
	}
	return false
}

// TestMidLogCorruptionHardError: flipping a bit anywhere before the
// final record makes replay fail with ErrCorrupt — corrupt history is
// never silently skipped — while a flip inside the final record is
// either a tolerated torn tail (payload/CRC damage at EOF is
// indistinguishable from a crash mid-write, so the record is dropped)
// or, when the flip rewrites the frame length and shifts framing,
// ErrCorrupt. Never a clean full replay, never a panic.
func TestMidLogCorruptionHardError(t *testing.T) {
	dir := t.TempDir()
	recs := testHistory(12)
	appendAll(t, dir, Options{}, recs)
	path := lastSegmentPath(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the final record begins.
	lastRecStart := 16
	for off := 16; off < len(orig); {
		payloadLen := int(uint32(orig[off]) | uint32(orig[off+1])<<8 | uint32(orig[off+2])<<16 | uint32(orig[off+3])<<24)
		next := off + 8 + payloadLen
		if next >= len(orig) {
			lastRecStart = off
			break
		}
		off = next
	}
	for i := 0; i < len(orig); i++ {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		_, torn, rerr := Replay(dir, func(Record) error { n++; return nil })
		if i < lastRecStart {
			if rerr == nil && n == len(recs) && !torn {
				t.Fatalf("flip at %d (before final record at %d) replayed cleanly", i, lastRecStart)
			}
			if rerr != nil && !errors.Is(rerr, ErrCorrupt) {
				t.Fatalf("flip at %d: error %v is not ErrCorrupt", i, rerr)
			}
		} else {
			// Inside the final record: torn-tail drop or ErrCorrupt,
			// but never a clean replay of the full (now wrong) history.
			if rerr != nil && !errors.Is(rerr, ErrCorrupt) {
				t.Fatalf("flip at %d (final record): error %v is not ErrCorrupt", i, rerr)
			}
			if rerr == nil && n == len(recs) && !torn {
				t.Fatalf("flip at %d (final record) replayed cleanly", i)
			}
		}
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenTruncatesTornTail: Open removes a torn tail so the next
// append lands on a clean boundary and replay after more appends is the
// clean prefix + the new records.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := testHistory(10)
	appendAll(t, dir, Options{}, recs[:8])
	path := lastSegmentPath(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way into the final record.
	if err := os.WriteFile(path, orig[:len(orig)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	appendAll(t, dir, Options{}, recs[8:])
	got, torn := collect(t, dir)
	if torn {
		t.Fatal("tail should be clean after Open truncation")
	}
	want := append(append([]Record(nil), recs[:7]...), recs[8:]...)
	assertRecordsEqual(t, want, got)
}

// TestRotateRemoveBefore: the checkpoint protocol — Rotate returns a
// cut, RemoveBefore(cut) drops everything older, and replay sees only
// post-cut records.
func TestRotateRemoveBefore(t *testing.T) {
	dir := t.TempDir()
	recs := testHistory(20)
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:12] {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[12:] {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WaitDurable(uint64(len(recs))); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveBefore(cut); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn := collect(t, dir)
	if torn {
		t.Fatal("unexpected torn tail")
	}
	assertRecordsEqual(t, recs[12:], got)
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0] != cut {
		t.Fatalf("oldest segment %d, want cut %d", segs[0], cut)
	}
}

// TestGroupCommit: concurrent waiters are all released and every record
// survives replay — the group-commit path under real contention.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var mu sync.Mutex // stand-in for the live index's writer lock
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			lsn, err := l.Append(Record{Op: OpInsert, Trajectory: testTraj(uint32(i), 3)})
			mu.Unlock()
			if err != nil {
				errs <- err
				return
			}
			errs <- l.WaitDurable(lsn)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Records != n {
		t.Fatalf("Records = %d, want %d", st.Records, n)
	}
	if st.Fsyncs == 0 || st.Fsyncs > n {
		t.Fatalf("Fsyncs = %d, want in [1, %d]", st.Fsyncs, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
}

// TestStats: counters reflect appends, segments, and fsync activity.
func TestStats(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	recs := testHistory(30)
	for _, rec := range recs {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Records != uint64(len(recs)) {
		t.Fatalf("Records = %d, want %d", st.Records, len(recs))
	}
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2", st.Segments)
	}
	if st.Bytes <= 0 || st.Fsyncs == 0 || st.MaxFsyncNanos <= 0 {
		t.Fatalf("implausible stats %+v", st)
	}
	if st.FirstSegment != 1 || st.LastSegment < 2 {
		t.Fatalf("segment range [%d, %d]", st.FirstSegment, st.LastSegment)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestClosedLogRejectsAppends: Append and Rotate after Close fail with
// ErrClosed; Close is idempotent.
func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Record{Op: OpDelete, ID: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after Close = %v, want ErrClosed", err)
	}
}

// TestSegmentGapHardError: a missing middle segment is corruption, not
// a shorter log.
func TestSegmentGapHardError(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, Options{SegmentBytes: 256}, testHistory(30))
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	if err := os.Remove(filepath.Join(dir, segmentName(segs[1]))); err != nil {
		t.Fatal(err)
	}
	_, _, rerr := Replay(dir, func(Record) error { return nil })
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("replay with segment gap = %v, want ErrCorrupt", rerr)
	}
}

// TestRecordCodecRejectsGarbage: decodeRecord errors (never panics) on
// malformed payloads.
func TestRecordCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{9},                                      // unknown op
		{byte(OpInsert)},                         // no body
		{byte(OpInsert), 1, 0, 0, 0, 1, 0, 0, 0}, // npts=1 < 2
		{byte(OpDelete), 1, 0, 0},                // short delete
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i, payload := range cases {
		if _, err := decodeRecord(payload); err == nil {
			t.Fatalf("case %d: garbage payload decoded", i)
		}
	}
	// Length/count mismatch.
	good, err := encodeRecord(nil, Record{Op: OpInsert, Trajectory: testTraj(7, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecord(good[:len(good)-8]); err == nil {
		t.Fatal("short insert payload decoded")
	}
}

// TestParseSyncPolicy round-trips the flag spellings.
func TestParseSyncPolicy(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		got, err := ParseSyncPolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestSyncIntervalEventuallyDurable: under SyncInterval the background
// ticker makes appended records durable without WaitDurable blocking.
func TestSyncIntervalEventuallyDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(Record{Op: OpInsert, Trajectory: testTraj(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
}

// TestReplayApplyErrorPropagates: an apply callback error aborts replay
// verbatim (it is the caller's error, not corruption).
func TestReplayApplyErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, dir, Options{}, testHistory(5))
	boom := fmt.Errorf("apply rejected")
	_, _, err := Replay(dir, func(Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("replay error = %v, want %v", err, boom)
	}
}
