package wal

import (
	"errors"
	"testing"

	"github.com/trajcover/trajcover/internal/faultfs"
	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func faultRecord(t *testing.T, id uint32) Record {
	t.Helper()
	u, err := trajectory.New(trajectory.ID(id), []geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return Record{Op: OpInsert, Trajectory: u, ID: u.ID}
}

// TestLogWedgesOnInjectedSyncError: an fsync failure must wedge the log
// (no later ack), expose the cause via Err, and a successor Open over
// the same directory must resume appending on a fresh segment with the
// acked prefix intact.
func TestLogWedgesOnInjectedSyncError(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 1)
	opts := Options{Sync: SyncAlways, FS: inj}

	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two clean acked appends.
	for i := uint32(1); i <= 2; i++ {
		lsn, err := l.Append(faultRecord(t, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Err(); err != nil {
		t.Fatalf("healthy log reports Err %v", err)
	}

	// Fail the next fsync: the append's ack must fail and the log must
	// wedge stickily.
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Nth: 1})
	lsn, err := l.Append(faultRecord(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("WaitDurable after injected fsync error: got %v", err)
	}
	if err := l.Err(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Err() = %v, want the injected fault", err)
	}
	if _, err := l.Append(faultRecord(t, 4)); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append on wedged log: got %v, want sticky wedge", err)
	}
	inj.Heal()
	if _, err := l.Append(faultRecord(t, 5)); err == nil {
		t.Fatal("wedge must be sticky even after the disk heals")
	}
	l.Close()

	// A successor log resumes on a fresh segment; replay sees the acked
	// prefix (ids 1,2) and possibly the unacked id 3, never id 4/5.
	l2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var ids []uint32
	if _, _, err := Replay(dir, func(rec Record) error {
		ids = append(ids, uint32(rec.ID))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(ids) < 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("acked prefix lost: replayed %v", ids)
	}
	for _, id := range ids {
		if id >= 4 {
			t.Fatalf("rejected append leaked to disk: replayed %v", ids)
		}
	}
	lsn, err = l2.Append(faultRecord(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
}

// TestLogShortWriteTornTail: a torn (short) write must at worst leave a
// torn final record, which the successor Open truncates away.
func TestLogShortWriteTornTail(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 7)
	opts := Options{Sync: SyncAlways, FS: inj}

	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(faultRecord(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	// Tear the next record's payload mid-write. The bufio flush path
	// surfaces the failure at sync time at the latest.
	inj.Add(faultfs.Rule{Op: faultfs.OpWrite, Nth: 1, Fault: faultfs.Fault{ShortWrite: true}})
	if lsn, err = l.Append(faultRecord(t, 2)); err == nil {
		err = l.WaitDurable(lsn)
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn write not surfaced: %v", err)
	}
	l.Close()
	inj.Heal()

	// Reopen: the torn tail is truncated, record 1 survives, appends work.
	l2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer l2.Close()
	var ids []uint32
	if _, _, err := Replay(dir, func(rec Record) error {
		ids = append(ids, uint32(rec.ID))
		return nil
	}); err != nil {
		t.Fatalf("replay after torn-tail truncation: %v", err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("want exactly the acked record 1, got %v", ids)
	}
}

// TestLogENOSPCRotation: ENOSPC on segment creation fails the rotation
// and wedges the log, and the error still matches syscall.ENOSPC.
func TestLogENOSPCRotation(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 3)
	// Tiny segments force a rotation on the second append.
	opts := Options{Sync: SyncAlways, SegmentBytes: 32, FS: inj}
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append(faultRecord(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	inj.Add(faultfs.Rule{Op: faultfs.OpCreate, Nth: 1, Fault: faultfs.Fault{Err: faultfs.ErrNoSpace}})
	_, err = l.Append(faultRecord(t, 2))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("rotation under ENOSPC: got %v", err)
	}
	if err := l.Err(); err == nil {
		t.Fatal("log must wedge after failed rotation")
	}
}
