package tqtree

import (
	"sort"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/zorder"
)

// FilterMode selects the candidate predicate zReduce applies to entries
// against a facility component's EMBR. Which mode is correct depends on
// the index variant and query scenario; see Tree.FilterModeFor.
type FilterMode int

const (
	// NeedBoth: an entry can only be served if both its first and last
	// point lie inside the EMBR (Binary service; Length over segments).
	NeedBoth FilterMode = iota
	// NeedAny: an entry can contribute if either endpoint lies inside
	// the EMBR (PointCount over two-point or segment entries).
	NeedAny
	// NeedOverlap: an entry can contribute if its MBR intersects the
	// EMBR (multipoint whole-trajectory entries, where interior points
	// may be served).
	NeedOverlap
)

func entryMatches(e *Entry, embr geo.Rect, mode FilterMode) bool {
	switch mode {
	case NeedBoth:
		return embr.Contains(e.First()) && embr.Contains(e.Last())
	case NeedAny:
		return embr.Contains(e.First()) || embr.Contains(e.Last())
	case NeedOverlap:
		return embr.Intersects(e.MBR())
	}
	panic("tqtree: invalid filter mode")
}

// entryList abstracts the per-node trajectory list. The Basic ordering
// stores a flat slice (the paper's TQ(B)); the ZOrder ordering keeps
// entries sorted by (start z-id, end z-id) in β-sized buckets — the
// paper's z-nodes — enabling bucket-level pruning (TQ(Z)).
type entryList interface {
	add(e Entry)
	len() int
	// forEach visits every entry; stops early if fn returns false.
	forEach(fn func(Entry) bool)
	// candidates visits entries that pass the zReduce pruning for the
	// given EMBR. ivs is the Morton-code interval cover of the EMBR in
	// the tree's root space (used only by the z-ordered list, and only
	// for modes that pin the start point inside the EMBR; may be nil
	// otherwise).
	candidates(embr geo.Rect, ivs []zorder.Interval, mode FilterMode, v EntryVisitor)
	// drain returns the entries and empties the list (used when a leaf
	// splits).
	drain() []Entry
	// remove deletes the entry matching e's identity (trajectory ID and
	// segment index), reporting whether it was present.
	remove(e *Entry) bool
}

// basicList is the flat, unordered list of TQ-tree Basic.
type basicList struct {
	entries []Entry
}

func newBasicList(entries []Entry) *basicList {
	return &basicList{entries: entries}
}

func (l *basicList) add(e Entry) { l.entries = append(l.entries, e) }

func (l *basicList) len() int { return len(l.entries) }

func (l *basicList) forEach(fn func(Entry) bool) {
	for _, e := range l.entries {
		if !fn(e) {
			return
		}
	}
}

func (l *basicList) candidates(embr geo.Rect, _ []zorder.Interval, mode FilterMode, v EntryVisitor) {
	for i := range l.entries {
		if entryMatches(&l.entries[i], embr, mode) {
			v.VisitEntry(&l.entries[i])
		}
	}
}

func (l *basicList) drain() []Entry {
	out := l.entries
	l.entries = nil
	return out
}

// zBucket is one z-node: up to β entries, consecutive in (startCode,
// endCode) order, with cached aggregates for bucket-level pruning.
type zBucket struct {
	entries  []Entry
	minStart uint64
	maxStart uint64
	startMBR geo.Rect // MBR of first points
	endMBR   geo.Rect // MBR of last points
	fullMBR  geo.Rect // union of entry MBRs
}

func newZBucket(entries []Entry) *zBucket {
	b := &zBucket{entries: entries}
	b.recompute()
	return b
}

func (b *zBucket) recompute() {
	if len(b.entries) == 0 {
		return
	}
	e0 := b.entries[0]
	b.minStart, b.maxStart = e0.startCode, e0.startCode
	f, l := e0.First(), e0.Last()
	b.startMBR = geo.NewRect(f, f)
	b.endMBR = geo.NewRect(l, l)
	b.fullMBR = e0.MBR()
	for _, e := range b.entries[1:] {
		b.extendAggregates(e)
	}
}

func (b *zBucket) extendAggregates(e Entry) {
	if e.startCode < b.minStart {
		b.minStart = e.startCode
	}
	if e.startCode > b.maxStart {
		b.maxStart = e.startCode
	}
	b.startMBR = b.startMBR.ExtendPoint(e.First())
	b.endMBR = b.endMBR.ExtendPoint(e.Last())
	b.fullMBR = b.fullMBR.ExtendRect(e.MBR())
}

// survives reports whether the bucket can contain candidates for the EMBR
// under the given mode — the bucket-granularity half of zReduce.
func (b *zBucket) survives(embr geo.Rect, mode FilterMode) bool {
	switch mode {
	case NeedBoth:
		return embr.Intersects(b.startMBR) && embr.Intersects(b.endMBR)
	case NeedAny:
		return embr.Intersects(b.startMBR) || embr.Intersects(b.endMBR)
	case NeedOverlap:
		return embr.Intersects(b.fullMBR)
	}
	panic("tqtree: invalid filter mode")
}

// zList is the z-ordered bucket list of TQ-tree Z-order.
type zList struct {
	buckets []*zBucket
	beta    int
	size    int
}

func entryLess(a, b Entry) bool {
	if a.startCode != b.startCode {
		return a.startCode < b.startCode
	}
	return a.endCode < b.endCode
}

func newZList(entries []Entry, beta int) *zList {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return entryLess(sorted[i], sorted[j]) })
	l := &zList{beta: beta, size: len(sorted)}
	for len(sorted) > 0 {
		n := beta
		if n > len(sorted) {
			n = len(sorted)
		}
		l.buckets = append(l.buckets, newZBucket(sorted[:n:n]))
		sorted = sorted[n:]
	}
	return l
}

func (l *zList) len() int { return l.size }

func (l *zList) add(e Entry) {
	l.size++
	if len(l.buckets) == 0 {
		l.buckets = append(l.buckets, newZBucket([]Entry{e}))
		return
	}
	// First bucket whose maxStart >= e.startCode keeps bucket start-code
	// ranges disjoint and ordered.
	i := sort.Search(len(l.buckets), func(i int) bool {
		return l.buckets[i].maxStart >= e.startCode
	})
	if i == len(l.buckets) {
		i = len(l.buckets) - 1
	}
	b := l.buckets[i]
	pos := sort.Search(len(b.entries), func(j int) bool {
		return !entryLess(b.entries[j], e)
	})
	b.entries = append(b.entries, Entry{})
	copy(b.entries[pos+1:], b.entries[pos:])
	b.entries[pos] = e
	b.extendAggregates(e)
	if len(b.entries) > l.beta {
		l.splitBucket(i)
	}
}

func (l *zList) splitBucket(i int) {
	b := l.buckets[i]
	mid := len(b.entries) / 2
	right := newZBucket(append([]Entry(nil), b.entries[mid:]...))
	b.entries = b.entries[:mid]
	b.recompute()
	l.buckets = append(l.buckets, nil)
	copy(l.buckets[i+2:], l.buckets[i+1:])
	l.buckets[i+1] = right
}

func (l *zList) forEach(fn func(Entry) bool) {
	for _, b := range l.buckets {
		for _, e := range b.entries {
			if !fn(e) {
				return
			}
		}
	}
}

func (l *zList) candidates(embr geo.Rect, ivs []zorder.Interval, mode FilterMode, v EntryVisitor) {
	if mode != NeedBoth || len(ivs) == 0 {
		for _, b := range l.buckets {
			l.scanBucket(b, embr, mode, v)
		}
		return
	}
	// Candidates must have their start point inside the EMBR, and any
	// point inside a rectangle has a Morton code inside the interval
	// cover of the rectangle — so only buckets whose start-code range
	// overlaps some interval can match. Buckets are visited at most
	// once: the cursor bi only moves forward.
	bi := 0
	for _, iv := range ivs {
		for bi < len(l.buckets) && l.buckets[bi].maxStart < iv.Lo {
			bi++
		}
		for bi < len(l.buckets) && l.buckets[bi].minStart <= iv.Hi {
			l.scanBucket(l.buckets[bi], embr, mode, v)
			bi++
		}
		if bi == len(l.buckets) {
			return
		}
	}
}

func (l *zList) scanBucket(b *zBucket, embr geo.Rect, mode FilterMode, v EntryVisitor) {
	if !b.survives(embr, mode) {
		return
	}
	for i := range b.entries {
		if entryMatches(&b.entries[i], embr, mode) {
			v.VisitEntry(&b.entries[i])
		}
	}
}

func (l *zList) drain() []Entry {
	out := make([]Entry, 0, l.size)
	for _, b := range l.buckets {
		out = append(out, b.entries...)
	}
	l.buckets = nil
	l.size = 0
	return out
}
