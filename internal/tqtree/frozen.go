package tqtree

// The frozen columnar TQ-tree: an immutable mirror of a built *Tree laid
// out in a handful of contiguous slices. The pointer tree stays the
// mutable build/Insert path; Freeze produces a read-optimized copy whose
// hot loops — best-first node expansion and zReduce bucket scans — walk
// flat arrays instead of chasing *Node / *Entry / *Trajectory pointers:
//
//   - q-nodes become parallel columns indexed by int32 (BFS order, each
//     node's children contiguous at childBase..childBase+childCount);
//   - per-node entry lists become ranges into one SoA entry slab
//     (first/last/mbr/startCode/endCode/ub columns);
//   - z-node buckets become ranges into bucket aggregate columns;
//   - Entry.Traj shrinks to an int32 index into one trajectory table,
//     touched only when a surviving candidate needs interior points.
//
// Beyond cache locality, the layout has ~zero pointer words for the GC
// to scan and serializes nearly verbatim (see the TQSNAP03/TQSHRD02
// snapshot formats), so restoring a frozen index is a bulk read plus
// bounds checks instead of a rebuild.

import (
	"fmt"
	"math"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
	"github.com/trajcover/trajcover/internal/zorder"
)

// Frozen is the immutable flat representation of a TQ-tree. It answers
// the same node/list questions as *Tree (upper bounds, zReduce candidate
// scans) with int32 node handles; internal/query runs the shared search
// implementation over either layout. A Frozen is safe for any number of
// concurrent readers and cannot be mutated.
type Frozen struct {
	variant       Variant
	ordering      Ordering
	beta          int
	maxDepth      int
	bounds        geo.Rect
	hasMultipoint bool

	// Node columns, in BFS order; the children of node n occupy
	// childBase[n] .. childBase[n]+childCount[n]-1 (quadrant order).
	// childBase is maintained for every node — it equals the running
	// child cursor even for leaves — so the BFS invariant is checkable
	// on restore. entryOff (and bucketOff, Z-order only) are cumulative:
	// node n's entries are the slab range [entryOff[n], entryOff[n+1]).
	nodeRect   []geo.Rect
	childBase  []int32
	childCount []int32
	entryOff   []int32
	bucketOff  []int32
	ownUB      []float64 // numNodes × NumScenarios, scenario-major per node
	treeUB     []float64 // numNodes × NumScenarios

	// Bucket aggregate columns (Z-order only): bucket b covers entries
	// [bktEntryOff[b], bktEntryOff[b+1]).
	bktEntryOff []int32
	bktMinStart []uint64
	bktMaxStart []uint64
	bktStartMBR []geo.Rect
	bktEndMBR   []geo.Rect
	bktFullMBR  []geo.Rect

	// Entry slab, SoA. entSeg is -1 for whole-trajectory entries. The
	// per-entry Morton codes and upper bounds of the pointer tree are
	// deliberately NOT carried over: zReduce prunes buckets with the
	// aggregate columns and filters entries by geometry, and the
	// immutable index never re-derives node bounds — dropping them
	// saves 40 bytes per entry in RAM and in every snapshot.
	entFirst []geo.Point
	entLast  []geo.Point
	entMBR   []geo.Rect
	entTraj  []int32
	entSeg   []int32

	// trajs is the trajectory table entTraj indexes into, ordered by
	// first appearance in the entry slab.
	trajs []*trajectory.Trajectory

	// pin, when non-nil, keeps the backing store of the columns
	// reachable: a Frozen restored from a mapped snapshot aliases its
	// slices onto the file mapping, and the mapping's release is driven
	// by a finalizer on the pinned token. Heap-restored and frozen-in-
	// process indexes leave it nil.
	pin any
}

// SetPin attaches the object that owns the columns' backing store (the
// mapped-snapshot token). Call once, right after FrozenFromColumns, and
// before the Frozen is shared.
func (f *Frozen) SetPin(p any) { f.pin = p }

// Freeze builds the flat representation of a built tree. The tree is only
// read; the result shares the trajectory objects but none of the node or
// list storage, so dropping the tree afterwards releases it entirely.
func Freeze(t *Tree) (*Frozen, error) {
	// BFS so each node's children land contiguously in quadrant order.
	nodes := make([]*Node, 0, 64)
	nodes = append(nodes, t.root)
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		for q := 0; q < 4; q++ {
			if c := n.children[q]; c != nil {
				nodes = append(nodes, c)
			}
		}
	}
	if len(nodes) > math.MaxInt32 || t.numEntries > math.MaxInt32 {
		return nil, fmt.Errorf("tqtree: tree too large to freeze (%d nodes, %d entries)", len(nodes), t.numEntries)
	}
	nn := len(nodes)
	f := &Frozen{
		variant:       t.opts.Variant,
		ordering:      t.opts.Ordering,
		beta:          t.opts.Beta,
		maxDepth:      t.opts.MaxDepth,
		bounds:        t.bounds,
		hasMultipoint: t.hasMultipoint,
		nodeRect:      make([]geo.Rect, nn),
		childBase:     make([]int32, nn),
		childCount:    make([]int32, nn),
		entryOff:      make([]int32, nn+1),
		ownUB:         make([]float64, nn*service.NumScenarios),
		treeUB:        make([]float64, nn*service.NumScenarios),
		entFirst:      make([]geo.Point, 0, t.numEntries),
		entLast:       make([]geo.Point, 0, t.numEntries),
		entMBR:        make([]geo.Rect, 0, t.numEntries),
		entTraj:       make([]int32, 0, t.numEntries),
		entSeg:        make([]int32, 0, t.numEntries),
		trajs:         make([]*trajectory.Trajectory, 0, t.numTrajs),
	}
	if t.opts.Ordering == ZOrder {
		f.bucketOff = make([]int32, nn+1)
	}
	trajIdx := make(map[*trajectory.Trajectory]int32, t.numTrajs)
	cursor := int32(1)
	for i, n := range nodes {
		f.nodeRect[i] = n.rect
		cnt := int32(0)
		for q := 0; q < 4; q++ {
			if n.children[q] != nil {
				cnt++
			}
		}
		f.childBase[i] = cursor
		f.childCount[i] = cnt
		cursor += cnt
		for sc := 0; sc < service.NumScenarios; sc++ {
			f.ownUB[i*service.NumScenarios+sc] = n.ownUB[sc]
			f.treeUB[i*service.NumScenarios+sc] = n.treeUB[sc]
		}
		switch l := n.list.(type) {
		case *basicList:
			for j := range l.entries {
				f.appendEntry(&l.entries[j], trajIdx)
			}
		case *zList:
			for _, b := range l.buckets {
				f.bktEntryOff = append(f.bktEntryOff, int32(len(f.entFirst)))
				f.bktMinStart = append(f.bktMinStart, b.minStart)
				f.bktMaxStart = append(f.bktMaxStart, b.maxStart)
				f.bktStartMBR = append(f.bktStartMBR, b.startMBR)
				f.bktEndMBR = append(f.bktEndMBR, b.endMBR)
				f.bktFullMBR = append(f.bktFullMBR, b.fullMBR)
				for j := range b.entries {
					f.appendEntry(&b.entries[j], trajIdx)
				}
			}
		default:
			return nil, fmt.Errorf("tqtree: unknown list type %T", n.list)
		}
		f.entryOff[i+1] = int32(len(f.entFirst))
		if f.bucketOff != nil {
			f.bucketOff[i+1] = int32(len(f.bktMinStart))
		}
	}
	if f.bucketOff != nil {
		// Close the cumulative bucket → entry mapping.
		f.bktEntryOff = append(f.bktEntryOff, int32(len(f.entFirst)))
	}
	return f, nil
}

func (f *Frozen) appendEntry(e *Entry, trajIdx map[*trajectory.Trajectory]int32) {
	ti, ok := trajIdx[e.Traj]
	if !ok {
		ti = int32(len(f.trajs))
		trajIdx[e.Traj] = ti
		f.trajs = append(f.trajs, e.Traj)
	}
	f.entFirst = append(f.entFirst, e.first)
	f.entLast = append(f.entLast, e.last)
	f.entMBR = append(f.entMBR, e.mbr)
	f.entTraj = append(f.entTraj, ti)
	f.entSeg = append(f.entSeg, int32(e.SegIdx))
}

// Bounds returns the root space the index was built over.
func (f *Frozen) Bounds() geo.Rect { return f.bounds }

// Variant returns the decomposition variant.
func (f *Frozen) Variant() Variant { return f.variant }

// Ordering returns the per-node list ordering.
func (f *Frozen) Ordering() Ordering { return f.ordering }

// Beta returns the block size β.
func (f *Frozen) Beta() int { return f.beta }

// MaxDepth returns the depth bound the source tree was built with.
func (f *Frozen) MaxDepth() int { return f.maxDepth }

// NumNodes returns the number of q-nodes.
func (f *Frozen) NumNodes() int { return len(f.nodeRect) }

// NumEntries returns the number of stored entries.
func (f *Frozen) NumEntries() int { return len(f.entFirst) }

// NumTrajectories returns the number of indexed user trajectories.
func (f *Frozen) NumTrajectories() int { return len(f.trajs) }

// HasMultipoint reports whether any indexed trajectory has more than two
// points.
func (f *Frozen) HasMultipoint() bool { return f.hasMultipoint }

// Trajectories returns the trajectory table in entTraj index order — the
// order the snapshot formats record.
func (f *Frozen) Trajectories() []*trajectory.Trajectory { return f.trajs }

// ValidateScenario checks that queries under sc are exact on this index.
func (f *Frozen) ValidateScenario(sc service.Scenario) error {
	return validateScenario(f.variant, f.hasMultipoint, sc)
}

// FilterModeFor returns the zReduce candidate predicate that is sound for
// this index's variant under the given scenario.
func (f *Frozen) FilterModeFor(sc service.Scenario) FilterMode {
	return filterModeFor(f.variant, sc)
}

// AncestorsCanServe mirrors Tree.AncestorsCanServe.
func (f *Frozen) AncestorsCanServe(sc service.Scenario) bool {
	return ancestorsCanServe(f.variant, sc)
}

// Rect returns node n's cell rectangle.
func (f *Frozen) Rect(n int32) geo.Rect { return f.nodeRect[n] }

// IsLeaf reports whether node n has no children.
func (f *Frozen) IsLeaf(n int32) bool { return f.childCount[n] == 0 }

// Child returns the i-th child of node n, or -1 when i is past the node's
// child count. Children are stored in quadrant order, so iterating i in
// 0..3 visits them exactly as the pointer tree's quadrant loop does.
func (f *Frozen) Child(n int32, i int) int32 {
	if i >= int(f.childCount[n]) {
		return -1
	}
	return f.childBase[n] + int32(i)
}

// ListLen returns the number of entries stored at node n itself.
func (f *Frozen) ListLen(n int32) int {
	return int(f.entryOff[n+1] - f.entryOff[n])
}

// OwnUB returns node n's own-list service upper bound for sc.
func (f *Frozen) OwnUB(n int32, sc service.Scenario) float64 {
	return f.ownUB[int(n)*service.NumScenarios+int(sc)]
}

// TreeUB returns the paper's `sub` for the subtree rooted at n.
func (f *Frozen) TreeUB(n int32, sc service.Scenario) float64 {
	return f.treeUB[int(n)*service.NumScenarios+int(sc)]
}

// ContainingPath returns the chain of node indexes from the root down to
// the smallest node whose rectangle contains r — identical to the pointer
// tree's ContainingPath.
func (f *Frozen) ContainingPath(r geo.Rect) []int32 {
	path := []int32{0}
	n := int32(0)
	for f.childCount[n] > 0 {
		next := int32(-1)
		base := f.childBase[n]
		for i := int32(0); i < f.childCount[n]; i++ {
			if f.nodeRect[base+i].ContainsRect(r) {
				next = base + i
				break
			}
		}
		if next < 0 {
			break
		}
		path = append(path, next)
		n = next
	}
	return path
}

// ScoreNode runs the zReduce pruning over node n's own list against the
// EMBR and exactly scores every surviving entry with ss — the frozen
// counterpart of Tree.NodeCandidatesV feeding an entryScorer, fused into
// one pass over the SoA columns so the hot loop touches nothing but flat
// arrays. It returns the summed service (in slab order, so float results
// are bit-identical to the pointer path) and the number of entries scored.
func (f *Frozen) ScoreNode(n int32, embr geo.Rect, mode FilterMode, ss *service.StopSet, sc service.Scenario) (so float64, scored int) {
	lo, hi := f.entryOff[n], f.entryOff[n+1]
	if lo == hi {
		return 0, 0
	}
	if f.ordering != ZOrder {
		return f.scoreRange(lo, hi, embr, mode, ss, sc, 0, 0)
	}
	var ivs []zorder.Interval
	var scratch *[]zorder.Interval
	if mode == NeedBoth {
		scratch = ivScratchPool.Get().(*[]zorder.Interval)
		buf := (*scratch)[:0]
		if int(hi-lo) >= coverMinList {
			ivs = zorder.CoverIntervalsAuto(f.bounds, embr, coverBudget, buf)
		} else {
			ivs = append(buf, zorder.Interval{
				Lo: pointCode(f.bounds, geo.Point{X: embr.MinX, Y: embr.MinY}),
				Hi: pointCode(f.bounds, geo.Point{X: embr.MaxX, Y: embr.MaxY}),
			})
		}
	}
	blo, bhi := f.bucketOff[n], f.bucketOff[n+1]
	if mode != NeedBoth || len(ivs) == 0 {
		for b := blo; b < bhi; b++ {
			so, scored = f.scoreBucket(b, embr, mode, ss, sc, so, scored)
		}
	} else {
		// Candidates must have their start point inside the EMBR, so only
		// buckets whose start-code range overlaps an interval of the
		// EMBR's Morton cover can match; the cursor only moves forward.
		bi := blo
		for _, iv := range ivs {
			for bi < bhi && f.bktMaxStart[bi] < iv.Lo {
				bi++
			}
			for bi < bhi && f.bktMinStart[bi] <= iv.Hi {
				so, scored = f.scoreBucket(bi, embr, mode, ss, sc, so, scored)
				bi++
			}
			if bi == bhi {
				break
			}
		}
	}
	if scratch != nil {
		*scratch = ivs[:0]
		ivScratchPool.Put(scratch)
	}
	return so, scored
}

// scoreBucket applies the bucket-granularity half of zReduce and scores
// the bucket's surviving entries. so/scored are running accumulators:
// threading one sum through every bucket keeps the float accumulation
// flat left-to-right over all surviving entries, exactly as the pointer
// path's entry visitor accumulates — per-bucket subtotals would group
// the additions differently and drift in the last bits.
func (f *Frozen) scoreBucket(b int32, embr geo.Rect, mode FilterMode, ss *service.StopSet, sc service.Scenario, so float64, scored int) (float64, int) {
	switch mode {
	case NeedBoth:
		if !embr.Intersects(f.bktStartMBR[b]) || !embr.Intersects(f.bktEndMBR[b]) {
			return so, scored
		}
	case NeedAny:
		if !embr.Intersects(f.bktStartMBR[b]) && !embr.Intersects(f.bktEndMBR[b]) {
			return so, scored
		}
	case NeedOverlap:
		if !embr.Intersects(f.bktFullMBR[b]) {
			return so, scored
		}
	}
	return f.scoreRange(f.bktEntryOff[b], f.bktEntryOff[b+1], embr, mode, ss, sc, so, scored)
}

// scoreRange filters and scores the entry slab range [lo, hi) into the
// running accumulators.
func (f *Frozen) scoreRange(lo, hi int32, embr geo.Rect, mode FilterMode, ss *service.StopSet, sc service.Scenario, so float64, scored int) (float64, int) {
	switch mode {
	case NeedBoth:
		for e := lo; e < hi; e++ {
			if embr.Contains(f.entFirst[e]) && embr.Contains(f.entLast[e]) {
				scored++
				so += f.serve(e, sc, ss)
			}
		}
	case NeedAny:
		for e := lo; e < hi; e++ {
			if embr.Contains(f.entFirst[e]) || embr.Contains(f.entLast[e]) {
				scored++
				so += f.serve(e, sc, ss)
			}
		}
	case NeedOverlap:
		for e := lo; e < hi; e++ {
			if embr.Intersects(f.entMBR[e]) {
				scored++
				so += f.serve(e, sc, ss)
			}
		}
	default:
		panic("tqtree: invalid filter mode")
	}
	return so, scored
}

// serve computes entry e's exact service contribution — the columnar
// counterpart of Entry.ServeSet, producing identical floats.
func (f *Frozen) serve(e int32, sc service.Scenario, ss *service.StopSet) float64 {
	seg := f.entSeg[e]
	if seg < 0 {
		if sc == service.Binary {
			if ss.Served(f.entFirst[e]) && ss.Served(f.entLast[e]) {
				return 1
			}
			return 0
		}
		return service.ValueSet(sc, f.trajs[f.entTraj[e]], ss)
	}
	switch sc {
	case service.Binary:
		if ss.Served(f.entFirst[e]) && ss.Served(f.entLast[e]) {
			return 1
		}
		return 0
	case service.PointCount:
		u := f.trajs[f.entTraj[e]]
		lo, hi := int(seg), int(seg)+1
		if int(seg) == u.NumSegments()-1 {
			hi = int(seg) + 2
		}
		served := 0
		for i := lo; i < hi; i++ {
			if ss.Served(u.Points[i]) {
				served++
			}
		}
		return float64(served) / float64(u.Len())
	case service.Length:
		u := f.trajs[f.entTraj[e]]
		L := u.Length()
		if L == 0 {
			return 0
		}
		if ss.Served(f.entFirst[e]) && ss.Served(f.entLast[e]) {
			return u.SegmentLength(int(seg)) / L
		}
		return 0
	}
	panic("tqtree: invalid scenario")
}
