package tqtree

import (
	"fmt"
	"testing"

	"github.com/trajcover/trajcover/internal/service"
)

// flattenTree collects every node of the tree in DFS order as a
// structural fingerprint: rect, depth, leaf flag, bounds, and the exact
// entry sequence of its list.
type nodeFingerprint struct {
	rect    string
	depth   int
	leaf    bool
	ownUB   [service.NumScenarios]float64
	treeUB  [service.NumScenarios]float64
	entries []string
}

func flattenTree(t *Tree) []nodeFingerprint {
	var out []nodeFingerprint
	t.Root().Walk(func(n *Node) {
		fp := nodeFingerprint{
			rect:   fmt.Sprint(n.rect),
			depth:  n.depth,
			leaf:   n.leaf,
			ownUB:  n.ownUB,
			treeUB: n.treeUB,
		}
		n.list.forEach(func(e Entry) bool {
			fp.entries = append(fp.entries, fmt.Sprintf("%d/%d/%d/%d",
				e.Traj.ID, e.SegIdx, e.startCode, e.endCode))
			return true
		})
		out = append(out, fp)
	})
	return out
}

func assertTreesIdentical(t *testing.T, serial, parallel *Tree) {
	t.Helper()
	if serial.Stats() != parallel.Stats() {
		t.Fatalf("stats differ: serial %+v, parallel %+v", serial.Stats(), parallel.Stats())
	}
	sf, pf := flattenTree(serial), flattenTree(parallel)
	if len(sf) != len(pf) {
		t.Fatalf("node counts differ: %d vs %d", len(sf), len(pf))
	}
	for i := range sf {
		if sf[i].rect != pf[i].rect || sf[i].depth != pf[i].depth || sf[i].leaf != pf[i].leaf {
			t.Fatalf("node %d shape differs: %+v vs %+v", i, sf[i], pf[i])
		}
		if sf[i].ownUB != pf[i].ownUB || sf[i].treeUB != pf[i].treeUB {
			t.Fatalf("node %d bounds differ: own %v/%v tree %v/%v",
				i, sf[i].ownUB, pf[i].ownUB, sf[i].treeUB, pf[i].treeUB)
		}
		if len(sf[i].entries) != len(pf[i].entries) {
			t.Fatalf("node %d entry counts differ: %d vs %d",
				i, len(sf[i].entries), len(pf[i].entries))
		}
		for j := range sf[i].entries {
			if sf[i].entries[j] != pf[i].entries[j] {
				t.Fatalf("node %d entry %d differs: %s vs %s",
					i, j, sf[i].entries[j], pf[i].entries[j])
			}
		}
	}
}

// TestParallelBuildMatchesSerial verifies the headline guarantee of the
// parallel construction: for every variant and ordering, Parallelism > 1
// produces a tree byte-identical to the serial build (same structure,
// same entry order, same upper bounds). Run with -race to also exercise
// the goroutine fan-out for data races.
func TestParallelBuildMatchesSerial(t *testing.T) {
	users := randTrajectories(6000, 5, 97, testBounds)
	for _, variant := range []Variant{TwoPoint, Segmented, FullTrajectory} {
		for _, ordering := range []Ordering{Basic, ZOrder} {
			name := fmt.Sprintf("%v/%v", variant, ordering)
			t.Run(name, func(t *testing.T) {
				base := Options{
					Variant: variant, Ordering: ordering,
					Beta: 32, Bounds: testBounds,
				}
				serialOpts := base
				serialOpts.Parallelism = 1
				serial, err := Build(users, serialOpts)
				if err != nil {
					t.Fatal(err)
				}
				parOpts := base
				parOpts.Parallelism = 8
				parallel, err := Build(users, parOpts)
				if err != nil {
					t.Fatal(err)
				}
				if err := parallel.CheckInvariants(); err != nil {
					t.Fatalf("parallel tree invariants: %v", err)
				}
				assertTreesIdentical(t, serial, parallel)
			})
		}
	}
}

// TestParallelBuildSmallCutoff drives the goroutine path even on small
// inputs by lowering beta so subtree slices stay above the leaf threshold
// while the default cutoff would suppress fan-out; it guards the slot
// accounting under -race with many concurrent builds.
func TestParallelBuildConcurrentBuilds(t *testing.T) {
	users := randTrajectories(4000, 2, 98, testBounds)
	done := make(chan *Tree, 4)
	for i := 0; i < 4; i++ {
		go func() {
			tree, err := Build(users, Options{
				Variant: TwoPoint, Ordering: ZOrder,
				Beta: 16, Bounds: testBounds, Parallelism: 4,
			})
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			done <- tree
		}()
	}
	var first *Tree
	for i := 0; i < 4; i++ {
		tree := <-done
		if tree == nil {
			t.Fatal("build failed")
		}
		if first == nil {
			first = tree
			continue
		}
		assertTreesIdentical(t, first, tree)
	}
}

// BenchmarkBuild compares serial and parallel construction at a
// fig7-scale entry count. On a multi-core host the parallel build should
// be >= 2x faster; on a single core it must not be slower than serial
// beyond noise (the fan-out is gated on available slots).
func BenchmarkBuild(b *testing.B) {
	users := randTrajectories(200000, 2, 99, testBounds)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(users, Options{
					Variant: TwoPoint, Ordering: ZOrder,
					Bounds: testBounds, Parallelism: par,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
