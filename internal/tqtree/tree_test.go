package tqtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// randTrajectories generates n multipoint trajectories with 2..maxPts
// points inside bounds, with locality (points near a random anchor).
func randTrajectories(n, maxPts int, seed int64, bounds geo.Rect) []*trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*trajectory.Trajectory, n)
	for i := range out {
		npts := 2
		if maxPts > 2 {
			npts += rng.Intn(maxPts - 1)
		}
		ax := bounds.MinX + rng.Float64()*bounds.Width()
		ay := bounds.MinY + rng.Float64()*bounds.Height()
		spread := bounds.Width() * 0.1
		pts := make([]geo.Point, npts)
		for j := range pts {
			pts[j] = geo.Pt(
				clampF(ax+rng.NormFloat64()*spread, bounds.MinX, bounds.MaxX),
				clampF(ay+rng.NormFloat64()*spread, bounds.MinY, bounds.MaxY),
			)
		}
		out[i] = trajectory.MustNew(trajectory.ID(i), pts)
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func randStops(n int, seed int64, bounds geo.Rect) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	stops := make([]geo.Point, n)
	for i := range stops {
		stops[i] = geo.Pt(
			bounds.MinX+rng.Float64()*bounds.Width(),
			bounds.MinY+rng.Float64()*bounds.Height(),
		)
	}
	return stops
}

var testBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}

func allConfigs() []Options {
	var out []Options
	for _, v := range []Variant{TwoPoint, Segmented, FullTrajectory} {
		for _, o := range []Ordering{Basic, ZOrder} {
			out = append(out, Options{Variant: v, Ordering: o, Beta: 8})
		}
	}
	return out
}

func TestBuildInvariantsAllConfigs(t *testing.T) {
	users := randTrajectories(400, 6, 42, testBounds)
	for _, opts := range allConfigs() {
		t.Run(opts.Variant.String()+"/"+opts.Ordering.String(), func(t *testing.T) {
			tree, err := Build(users, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			wantEntries := len(users)
			if opts.Variant == Segmented {
				wantEntries = 0
				for _, u := range users {
					wantEntries += u.NumSegments()
				}
			}
			if tree.NumEntries() != wantEntries {
				t.Errorf("NumEntries = %d, want %d", tree.NumEntries(), wantEntries)
			}
			if tree.NumTrajectories() != len(users) {
				t.Errorf("NumTrajectories = %d, want %d", tree.NumTrajectories(), len(users))
			}
			st := tree.Stats()
			if st.Entries != wantEntries {
				t.Errorf("Stats.Entries = %d, want %d", st.Entries, wantEntries)
			}
		})
	}
}

func TestInsertMatchesBuild(t *testing.T) {
	users := randTrajectories(300, 5, 43, testBounds)
	for _, opts := range allConfigs() {
		opts.Bounds = testBounds
		t.Run(opts.Variant.String()+"/"+opts.Ordering.String(), func(t *testing.T) {
			// Build with half, insert the rest.
			tree, err := Build(users[:150], opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range users[150:] {
				tree.Insert(u)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tree.NumTrajectories() != 300 {
				t.Errorf("NumTrajectories = %d", tree.NumTrajectories())
			}
			// Entry totals must match a fresh build over everything.
			full, err := Build(users, opts)
			if err != nil {
				t.Fatal(err)
			}
			if tree.NumEntries() != full.NumEntries() {
				t.Errorf("entries after insert = %d, fresh build = %d",
					tree.NumEntries(), full.NumEntries())
			}
			// Root upper bounds must agree (same entry multiset).
			for sc := 0; sc < service.NumScenarios; sc++ {
				a := tree.Root().TreeUB(service.Scenario(sc))
				b := full.Root().TreeUB(service.Scenario(sc))
				if math.Abs(a-b) > 1e-6*(1+b) {
					t.Errorf("treeUB[%d] after insert = %v, fresh = %v", sc, a, b)
				}
			}
		})
	}
}

func TestInsertOutsideBoundsStaysAtRoot(t *testing.T) {
	opts := Options{Variant: TwoPoint, Ordering: ZOrder, Beta: 4, Bounds: testBounds}
	tree, err := Build(randTrajectories(20, 2, 44, testBounds), opts)
	if err != nil {
		t.Fatal(err)
	}
	far := trajectory.MustNew(9999, []geo.Point{geo.Pt(5000, 5000), geo.Pt(6000, 6000)})
	tree.Insert(far)
	if err := tree.CheckInvariants(); err == nil {
		// Invariant 2 requires routing rect within node rect; the root
		// rect does not contain the far trajectory, so we expect the
		// check to flag it — document the degradation explicitly.
		t.Log("out-of-bounds entry accepted at root (invariants tolerate it)")
	}
}

// collectCandidates runs NodeCandidates over every node of the tree.
func collectCandidates(tree *Tree, embr geo.Rect, mode FilterMode) map[trajectory.ID][]int {
	got := map[trajectory.ID][]int{}
	tree.Root().Walk(func(n *Node) {
		tree.NodeCandidates(n, embr, mode, func(e *Entry) {
			got[e.Traj.ID] = append(got[e.Traj.ID], e.SegIdx)
		})
	})
	return got
}

func TestCandidatePruningIsSound(t *testing.T) {
	// zReduce must never prune an entry that has positive service.
	users := randTrajectories(300, 6, 45, testBounds)
	psi := 40.0
	for _, opts := range allConfigs() {
		tree, err := Build(users, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(46))
		for trial := 0; trial < 30; trial++ {
			stops := randStops(1+rng.Intn(10), int64(trial)*7+1, testBounds)
			embr := geo.RectOf(stops).Expand(psi)
			for sc := service.Binary; sc <= service.Length; sc++ {
				if tree.ValidateScenario(sc) != nil {
					continue
				}
				mode := tree.FilterModeFor(sc)
				got := collectCandidates(tree, embr, mode)
				// Every entry with positive service must be a candidate.
				checkEntry := func(e Entry) {
					if e.Serve(sc, stops, psi) > 0 {
						found := false
						for _, si := range got[e.Traj.ID] {
							if si == e.SegIdx {
								found = true
								break
							}
						}
						if !found {
							t.Fatalf("%v/%v sc=%v: served entry %d/%d pruned",
								opts.Variant, opts.Ordering, sc, e.Traj.ID, e.SegIdx)
						}
					}
				}
				tree.Root().Walk(func(n *Node) {
					n.ForEachEntry(func(e Entry) bool { checkEntry(e); return true })
				})
			}
		}
	}
}

func TestTreeUBDominatesAnyService(t *testing.T) {
	// For any facility, the root treeUB must dominate the total service,
	// and every node's treeUB must dominate the service obtainable from
	// entries in its subtree.
	users := randTrajectories(200, 5, 47, testBounds)
	psi := 60.0
	for _, opts := range allConfigs() {
		tree, err := Build(users, opts)
		if err != nil {
			t.Fatal(err)
		}
		stops := randStops(12, 48, testBounds)
		for sc := service.Binary; sc <= service.Length; sc++ {
			var subtreeService func(n *Node) float64
			subtreeService = func(n *Node) float64 {
				var total float64
				n.ForEachEntry(func(e Entry) bool {
					total += e.Serve(sc, stops, psi)
					return true
				})
				for q := 0; q < 4; q++ {
					if c := n.Child(q); c != nil {
						total += subtreeService(c)
					}
				}
				return total
			}
			var verify func(n *Node)
			verify = func(n *Node) {
				got := subtreeService(n)
				if got > n.TreeUB(sc)+1e-9 {
					t.Fatalf("%v/%v sc=%v: subtree service %v exceeds treeUB %v",
						opts.Variant, opts.Ordering, sc, got, n.TreeUB(sc))
				}
				for q := 0; q < 4; q++ {
					if c := n.Child(q); c != nil {
						verify(c)
					}
				}
			}
			verify(tree.Root())
		}
	}
}

func TestSegmentEntriesSumToTrajectoryService(t *testing.T) {
	// Summing segment-entry contributions over a whole trajectory must
	// reproduce the trajectory-level PointCount and Length values.
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		u := trajectory.MustNew(1, pts)
		stops := randStops(1+rng.Intn(6), int64(trial)+500, geo.Rect{MaxX: 100, MaxY: 100})
		psi := rng.Float64() * 40
		for _, sc := range []service.Scenario{service.PointCount, service.Length} {
			var sum float64
			for i := 0; i < u.NumSegments(); i++ {
				e := newSegmentEntry(u, i, testBounds)
				sum += e.Serve(sc, stops, psi)
			}
			want := service.Value(sc, u, stops, psi)
			if math.Abs(sum-want) > 1e-9 {
				t.Fatalf("sc=%v: segment sum %v != trajectory value %v", sc, sum, want)
			}
		}
	}
}

func TestValidateScenario(t *testing.T) {
	multi := randTrajectories(50, 5, 50, testBounds)
	twoPt := randTrajectories(50, 2, 51, testBounds)

	tree, _ := Build(multi, Options{Variant: TwoPoint})
	if err := tree.ValidateScenario(service.PointCount); err == nil {
		t.Error("TwoPoint over multipoint data accepted PointCount")
	}
	if err := tree.ValidateScenario(service.Binary); err != nil {
		t.Errorf("TwoPoint Binary rejected: %v", err)
	}

	tree2, _ := Build(twoPt, Options{Variant: TwoPoint})
	for sc := service.Binary; sc <= service.Length; sc++ {
		if err := tree2.ValidateScenario(sc); err != nil {
			t.Errorf("TwoPoint over 2-point data rejected %v: %v", sc, err)
		}
	}

	tree3, _ := Build(multi, Options{Variant: FullTrajectory})
	for sc := service.Binary; sc <= service.Length; sc++ {
		if err := tree3.ValidateScenario(sc); err != nil {
			t.Errorf("FullTrajectory rejected %v: %v", sc, err)
		}
	}
	if err := tree3.ValidateScenario(service.Scenario(7)); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestContainingPath(t *testing.T) {
	users := randTrajectories(500, 2, 52, testBounds)
	tree, err := Build(users, Options{Variant: TwoPoint, Ordering: ZOrder, Beta: 8})
	if err != nil {
		t.Fatal(err)
	}
	small := geo.Rect{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}
	path := tree.ContainingPath(small)
	if len(path) == 0 || path[0] != tree.Root() {
		t.Fatal("path must start at root")
	}
	for i, n := range path {
		if !n.Rect().ContainsRect(small) {
			t.Errorf("path[%d] rect %v does not contain query", i, n.Rect())
		}
	}
	last := path[len(path)-1]
	// No child of the last node may contain the rect.
	if !last.IsLeaf() {
		for q := 0; q < 4; q++ {
			if c := last.Child(q); c != nil && c.Rect().ContainsRect(small) {
				t.Error("ContainingPath stopped early")
			}
		}
	}
	// A rect spanning the center must stay at the root.
	center := geo.Rect{MinX: 499, MinY: 499, MaxX: 501, MaxY: 501}
	if p := tree.ContainingPath(center); len(p) != 1 {
		t.Errorf("center rect path length = %d, want 1", len(p))
	}
}

func TestFilterModeFor(t *testing.T) {
	users := randTrajectories(10, 4, 53, testBounds)
	mk := func(v Variant) *Tree {
		tr, _ := Build(users, Options{Variant: v})
		return tr
	}
	cases := []struct {
		v    Variant
		sc   service.Scenario
		want FilterMode
	}{
		{TwoPoint, service.Binary, NeedBoth},
		{TwoPoint, service.PointCount, NeedAny},
		{TwoPoint, service.Length, NeedBoth},
		{Segmented, service.Binary, NeedBoth},
		{Segmented, service.PointCount, NeedAny},
		{Segmented, service.Length, NeedBoth},
		{FullTrajectory, service.Binary, NeedBoth},
		{FullTrajectory, service.PointCount, NeedOverlap},
		{FullTrajectory, service.Length, NeedOverlap},
	}
	for _, tt := range cases {
		if got := mk(tt.v).FilterModeFor(tt.sc); got != tt.want {
			t.Errorf("FilterModeFor(%v,%v) = %v, want %v", tt.v, tt.sc, got, tt.want)
		}
	}
}

func TestAncestorsCanServe(t *testing.T) {
	users := randTrajectories(10, 4, 54, testBounds)
	mk := func(v Variant) *Tree {
		tr, _ := Build(users, Options{Variant: v})
		return tr
	}
	if mk(TwoPoint).AncestorsCanServe(service.Binary) {
		t.Error("TwoPoint/Binary should not need ancestors")
	}
	if !mk(TwoPoint).AncestorsCanServe(service.PointCount) {
		t.Error("TwoPoint/PointCount needs ancestors (single-endpoint service)")
	}
	if mk(Segmented).AncestorsCanServe(service.Length) {
		t.Error("Segmented/Length should not need ancestors")
	}
	if !mk(Segmented).AncestorsCanServe(service.PointCount) {
		t.Error("Segmented/PointCount needs ancestors")
	}
	if !mk(FullTrajectory).AncestorsCanServe(service.Binary) {
		t.Error("FullTrajectory always needs ancestors")
	}
}

func TestDeepDuplicateTrajectoriesBounded(t *testing.T) {
	// Identical trajectories cannot be separated; depth must stay bounded
	// and the structure valid.
	pts := []geo.Point{geo.Pt(100.5, 100.5), geo.Pt(101, 101)}
	users := make([]*trajectory.Trajectory, 500)
	for i := range users {
		users[i] = trajectory.MustNew(trajectory.ID(i), pts)
	}
	tree, err := Build(users, Options{Variant: TwoPoint, Ordering: ZOrder, Beta: 4, MaxDepth: 10, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := tree.Stats(); st.MaxDepth > 10 {
		t.Errorf("depth %d exceeds MaxDepth", st.MaxDepth)
	}
}

func TestLeafSplitOnInsertOverflow(t *testing.T) {
	opts := Options{Variant: TwoPoint, Ordering: ZOrder, Beta: 4, Bounds: testBounds}
	tree, err := Build(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	users := randTrajectories(100, 2, 55, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
	for _, u := range users {
		tree.Insert(u)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := tree.Stats(); st.Nodes <= 1 {
		t.Error("tree never split despite overflow")
	}
}

func TestEmptyTree(t *testing.T) {
	tree, err := Build(nil, Options{Variant: FullTrajectory, Ordering: ZOrder, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.Root().TreeUB(service.Binary) != 0 {
		t.Error("empty tree has nonzero UB")
	}
	tree.NodeCandidates(tree.Root(), testBounds, NeedBoth, func(*Entry) {
		t.Error("candidate from empty tree")
	})
}

func TestQuickRandomTreesKeepInvariants(t *testing.T) {
	// testing/quick drives random workload shapes (count, point counts,
	// beta, variant, ordering) through Build+Insert and checks the
	// structural invariants each time.
	f := func(seed int64, nRaw, maxPtsRaw, betaRaw uint8, variantRaw, orderingRaw uint8) bool {
		n := 20 + int(nRaw)%200
		maxPts := 2 + int(maxPtsRaw)%6
		beta := 2 + int(betaRaw)%30
		variant := Variant(int(variantRaw) % 3)
		ordering := Ordering(int(orderingRaw) % 2)
		users := randTrajectories(n, maxPts, seed, testBounds)
		tree, err := Build(users[:n/2], Options{
			Variant: variant, Ordering: ordering, Beta: beta, Bounds: testBounds,
		})
		if err != nil {
			t.Logf("build error: %v", err)
			return false
		}
		for _, u := range users[n/2:] {
			tree.Insert(u)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Logf("invariant violation (seed=%d n=%d beta=%d %v/%v): %v",
				seed, n, beta, variant, ordering, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVariantOrderingStrings(t *testing.T) {
	if TwoPoint.String() != "twopoint" || Segmented.String() != "segmented" ||
		FullTrajectory.String() != "fulltrajectory" {
		t.Error("Variant.String broken")
	}
	if Basic.String() != "basic" || ZOrder.String() != "zorder" {
		t.Error("Ordering.String broken")
	}
	if Variant(9).String() == "" || Ordering(9).String() == "" {
		t.Error("out-of-range String empty")
	}
}
