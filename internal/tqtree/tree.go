// Package tqtree implements the Trajectory Quadtree (TQ-tree), the paper's
// core contribution: a quadtree that stores trajectories in both internal
// and leaf nodes — each trajectory at the lowest node whose children split
// it — with per-node trajectory lists either kept flat (the TQ(B) baseline
// form) or bucketed and sorted by Z-order (the full TQ(Z) index).
//
// Every q-node carries `sub` upper bounds on the service value obtainable
// from its subtree, which the best-first kMaxRRST search in
// internal/query consumes.
package tqtree

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
	"github.com/trajcover/trajcover/internal/zorder"
)

// Variant selects how trajectories are decomposed into stored entries.
type Variant int

const (
	// TwoPoint indexes each trajectory by its source and destination
	// only (the paper's base structure; exact for Binary service).
	TwoPoint Variant = iota
	// Segmented stores every segment of every trajectory as its own
	// entry (the paper's segmented generalization, S-TQ).
	Segmented
	// FullTrajectory stores each whole trajectory at the lowest node
	// fully containing it (the paper's full-trajectory generalization,
	// F-TQ).
	FullTrajectory
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case TwoPoint:
		return "twopoint"
	case Segmented:
		return "segmented"
	case FullTrajectory:
		return "fulltrajectory"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Ordering selects how each q-node's trajectory list is organized.
type Ordering int

const (
	// Basic keeps a flat list per q-node — the paper's TQ(B).
	Basic Ordering = iota
	// ZOrder keeps β-sized buckets sorted by (start, end) z-ids — the
	// paper's TQ(Z).
	ZOrder
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Basic:
		return "basic"
	case ZOrder:
		return "zorder"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// DefaultBeta is the default bucket/block size β.
const DefaultBeta = 64

// DefaultMaxDepth bounds quadtree depth.
const DefaultMaxDepth = 20

// Options configures tree construction.
type Options struct {
	Variant  Variant
	Ordering Ordering
	// Beta is the paper's β: the block size bounding both leaf lists
	// (before splitting) and z-node buckets. 0 means DefaultBeta.
	Beta int
	// MaxDepth bounds splitting. 0 means DefaultMaxDepth.
	MaxDepth int
	// Bounds is the root space. It is extended to cover the data; a
	// zero Rect derives bounds entirely from the data.
	Bounds geo.Rect
	// Parallelism bounds the number of goroutines Build may run
	// concurrently. 0 means runtime.GOMAXPROCS(0); 1 forces the serial
	// build. The parallel build produces a tree identical to the serial
	// one: subtrees are built independently and their `sub` upper bounds
	// are merged in quadrant order after the joins.
	Parallelism int
}

// Tree is a TQ-tree over a set of user trajectories.
type Tree struct {
	opts          Options
	bounds        geo.Rect
	root          *Node
	numTrajs      int
	numEntries    int
	hasMultipoint bool
}

// Node is a q-node of the TQ-tree. Internal nodes hold the inter-node
// entries (those split by their children); leaves hold intra-node entries.
type Node struct {
	rect     geo.Rect
	depth    int
	leaf     bool
	children [4]*Node
	list     entryList
	ownUB    [service.NumScenarios]float64
	treeUB   [service.NumScenarios]float64
}

// Build constructs a TQ-tree over the given trajectories.
func Build(users []*trajectory.Trajectory, opts Options) (*Tree, error) {
	if opts.Beta <= 0 {
		opts.Beta = DefaultBeta
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	if opts.Variant < TwoPoint || opts.Variant > FullTrajectory {
		return nil, fmt.Errorf("tqtree: invalid variant %d", int(opts.Variant))
	}
	if opts.Ordering < Basic || opts.Ordering > ZOrder {
		return nil, fmt.Errorf("tqtree: invalid ordering %d", int(opts.Ordering))
	}
	bounds := opts.Bounds
	for _, u := range users {
		bounds = bounds.ExtendRect(u.MBR())
	}
	t := &Tree{opts: opts, bounds: bounds}
	entries := make([]Entry, 0, len(users))
	for _, u := range users {
		t.noteTrajectory(u)
		entries = t.appendEntries(entries, u)
	}
	t.numEntries = len(entries)
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	b := &treeBuilder{t: t}
	b.slots.Store(int64(par - 1))
	t.root = b.build(bounds, 0, entries)
	return t, nil
}

func (t *Tree) noteTrajectory(u *trajectory.Trajectory) {
	t.numTrajs++
	if u.Len() > 2 {
		t.hasMultipoint = true
	}
}

func (t *Tree) appendEntries(dst []Entry, u *trajectory.Trajectory) []Entry {
	switch t.opts.Variant {
	case Segmented:
		for i := 0; i < u.NumSegments(); i++ {
			dst = append(dst, newSegmentEntry(u, i, t.bounds))
		}
	default:
		dst = append(dst, newEntry(u, t.bounds))
	}
	return dst
}

// routingRect returns the rectangle that determines where an entry is
// stored: source/destination span for TwoPoint, the segment for
// Segmented, and the full MBR for FullTrajectory.
func (t *Tree) routingRect(e Entry) geo.Rect {
	if t.opts.Variant == FullTrajectory {
		return e.Traj.MBR()
	}
	return geo.NewRect(e.First(), e.Last())
}

// routeQuadrant returns the child quadrant that wholly contains the
// entry's routing rectangle, or ok=false when the entry must stay at a
// node with this rect (it is "inter-node" there).
func (t *Tree) routeQuadrant(rect geo.Rect, e Entry) (q int, ok bool) {
	rr := t.routingRect(e)
	q = rect.QuadrantOf(e.First())
	if rect.Quadrant(q).ContainsRect(rr) {
		return q, true
	}
	return 0, false
}

func (t *Tree) newList(entries []Entry) entryList {
	if t.opts.Ordering == ZOrder {
		return newZList(entries, t.opts.Beta)
	}
	return newBasicList(entries)
}

// parallelBuildCutoff is the subtree entry count below which fanning out
// a goroutine costs more than building inline.
const parallelBuildCutoff = 2048

// treeBuilder runs the recursive construction with a bounded goroutine
// budget. Each quadrant's entry slice is disjoint, so subtrees build
// without sharing mutable state; the only cross-goroutine writes are the
// n.children[q] stores, which the WaitGroup join orders before the parent
// reads them back for the treeUB merge.
type treeBuilder struct {
	t     *Tree
	slots atomic.Int64 // extra goroutines still allowed
}

func (b *treeBuilder) acquireSlot() bool {
	for {
		s := b.slots.Load()
		if s <= 0 {
			return false
		}
		if b.slots.CompareAndSwap(s, s-1) {
			return true
		}
	}
}

// build is the serial construction used by Insert-time leaf splits.
func (t *Tree) build(rect geo.Rect, depth int, entries []Entry) *Node {
	return (&treeBuilder{t: t}).build(rect, depth, entries)
}

func (b *treeBuilder) build(rect geo.Rect, depth int, entries []Entry) *Node {
	t := b.t
	n := &Node{rect: rect, depth: depth}
	if len(entries) <= t.opts.Beta || depth >= t.opts.MaxDepth {
		n.leaf = true
		n.list = t.newList(entries)
		n.recomputeOwnUB()
		n.treeUB = n.ownUB
		return n
	}
	var stay []Entry
	var routed [4][]Entry
	anyRouted := false
	for _, e := range entries {
		if q, ok := t.routeQuadrant(rect, e); ok {
			routed[q] = append(routed[q], e)
			anyRouted = true
		} else {
			stay = append(stay, e)
		}
	}
	if !anyRouted {
		n.leaf = true
		n.list = t.newList(entries)
		n.recomputeOwnUB()
		n.treeUB = n.ownUB
		return n
	}
	n.list = t.newList(stay)
	n.recomputeOwnUB()
	n.treeUB = n.ownUB
	var wg sync.WaitGroup
	for q := 0; q < 4; q++ {
		if len(routed[q]) == 0 {
			continue
		}
		crect := rect.Quadrant(q)
		if len(routed[q]) >= parallelBuildCutoff && b.acquireSlot() {
			wg.Add(1)
			go func(q int, ents []Entry) {
				defer wg.Done()
				n.children[q] = b.build(crect, depth+1, ents)
				b.slots.Add(1)
			}(q, routed[q])
		} else {
			n.children[q] = b.build(crect, depth+1, routed[q])
		}
	}
	wg.Wait()
	// Merge after the joins, in quadrant order, so the floating-point
	// accumulation matches the serial build bit for bit.
	for q := 0; q < 4; q++ {
		if c := n.children[q]; c != nil {
			for sc := 0; sc < service.NumScenarios; sc++ {
				n.treeUB[sc] += c.treeUB[sc]
			}
		}
	}
	return n
}

func (n *Node) recomputeOwnUB() {
	n.ownUB = [service.NumScenarios]float64{}
	n.list.forEach(func(e Entry) bool {
		for sc := 0; sc < service.NumScenarios; sc++ {
			n.ownUB[sc] += e.ub[sc]
		}
		return true
	})
}

// Insert adds a user trajectory to the tree. The tree's root space is
// fixed at Build time; trajectories extending outside it are stored at
// the root (correct, but degrades pruning — choose Bounds generously for
// dynamic workloads).
func (t *Tree) Insert(u *trajectory.Trajectory) {
	t.noteTrajectory(u)
	entries := t.appendEntries(nil, u)
	t.numEntries += len(entries)
	for _, e := range entries {
		t.insertEntry(e)
	}
}

func (t *Tree) insertEntry(e Entry) {
	n := t.root
	for {
		for sc := 0; sc < service.NumScenarios; sc++ {
			n.treeUB[sc] += e.ub[sc]
		}
		if n.leaf {
			n.list.add(e)
			for sc := 0; sc < service.NumScenarios; sc++ {
				n.ownUB[sc] += e.ub[sc]
			}
			if n.list.len() > t.opts.Beta && n.depth < t.opts.MaxDepth {
				t.splitLeaf(n)
			}
			return
		}
		q, ok := t.routeQuadrant(n.rect, e)
		if !ok {
			n.list.add(e)
			for sc := 0; sc < service.NumScenarios; sc++ {
				n.ownUB[sc] += e.ub[sc]
			}
			return
		}
		if n.children[q] == nil {
			child := &Node{rect: n.rect.Quadrant(q), depth: n.depth + 1, leaf: true}
			child.list = t.newList(nil)
			n.children[q] = child
		}
		n = n.children[q]
	}
}

// splitLeaf converts an overflowing leaf into an internal node, pushing
// routable entries into fresh children. If nothing routes down, the node
// stays a (large) leaf.
func (t *Tree) splitLeaf(n *Node) {
	entries := n.list.drain()
	var stay []Entry
	var routed [4][]Entry
	anyRouted := false
	for _, e := range entries {
		if q, ok := t.routeQuadrant(n.rect, e); ok {
			routed[q] = append(routed[q], e)
			anyRouted = true
		} else {
			stay = append(stay, e)
		}
	}
	if !anyRouted {
		n.list = t.newList(entries)
		n.recomputeOwnUB()
		return
	}
	n.leaf = false
	n.list = t.newList(stay)
	n.recomputeOwnUB()
	for q := 0; q < 4; q++ {
		if len(routed[q]) == 0 {
			continue
		}
		n.children[q] = t.build(n.rect.Quadrant(q), n.depth+1, routed[q])
	}
}

// Bounds returns the tree's root space.
func (t *Tree) Bounds() geo.Rect { return t.bounds }

// Root returns the root q-node.
func (t *Tree) Root() *Node { return t.root }

// Variant returns the decomposition variant the tree was built with.
func (t *Tree) Variant() Variant { return t.opts.Variant }

// Ordering returns the list ordering the tree was built with.
func (t *Tree) Ordering() Ordering { return t.opts.Ordering }

// Beta returns the block size β the tree was built with.
func (t *Tree) Beta() int { return t.opts.Beta }

// MaxDepth returns the depth bound the tree was built with.
func (t *Tree) MaxDepth() int { return t.opts.MaxDepth }

// NumTrajectories returns the number of user trajectories indexed.
func (t *Tree) NumTrajectories() int { return t.numTrajs }

// NumEntries returns the number of stored entries (equals trajectories
// for TwoPoint/FullTrajectory; total segments for Segmented).
func (t *Tree) NumEntries() int { return t.numEntries }

// HasMultipoint reports whether any indexed trajectory has more than two
// points.
func (t *Tree) HasMultipoint() bool { return t.hasMultipoint }

// ErrUnsupported is returned when a scenario cannot be answered exactly
// by a tree of this variant over the indexed data.
var ErrUnsupported = errors.New("tqtree: scenario unsupported by index variant for multipoint data")

// validateScenario checks that queries under sc are exact for a tree of
// the given variant over data with (or without) multipoint trajectories.
// Shared by the pointer Tree and the Frozen layout so both representations
// answer the same scenario questions identically.
func validateScenario(v Variant, hasMultipoint bool, sc service.Scenario) error {
	if !sc.Valid() {
		return fmt.Errorf("tqtree: invalid scenario %d", int(sc))
	}
	if v == TwoPoint && sc != service.Binary && hasMultipoint {
		return fmt.Errorf("%w (variant %v, scenario %v)", ErrUnsupported, v, sc)
	}
	return nil
}

// ValidateScenarioFor is validateScenario exported for layers that
// assemble a logical corpus from several representations — the live
// epoch in internal/query validates its delta overlay (which has no tree
// of its own) with exactly the rule both tree layouts apply.
func ValidateScenarioFor(v Variant, hasMultipoint bool, sc service.Scenario) error {
	return validateScenario(v, hasMultipoint, sc)
}

// filterModeFor returns the zReduce candidate predicate that is sound for
// the given variant under the given scenario.
func filterModeFor(v Variant, sc service.Scenario) FilterMode {
	switch v {
	case TwoPoint, Segmented:
		if sc == service.PointCount {
			return NeedAny
		}
		return NeedBoth
	default: // FullTrajectory
		if sc == service.Binary {
			return NeedBoth
		}
		return NeedOverlap
	}
}

// ancestorsCanServe reports whether entries stored at proper ancestors of
// the smallest node containing a facility's EMBR can still contribute
// service under sc for the given variant.
func ancestorsCanServe(v Variant, sc service.Scenario) bool {
	switch v {
	case TwoPoint, Segmented:
		// Under NeedBoth semantics both endpoints would have to lie
		// inside the EMBR, hence inside a single child — contradicting
		// inter-node storage. Under PointCount (NeedAny) a single
		// endpoint inside the EMBR contributes, and an ancestor-stored
		// entry can have one endpoint there.
		return sc == service.PointCount
	default:
		// Whole multipoint trajectories can span children while some
		// points (or even source+destination) fall inside the EMBR.
		return true
	}
}

// ValidateScenario checks that queries under sc are exact on this tree.
// A TwoPoint tree indexes only source/destination, so over multipoint
// data it can answer Binary queries only.
func (t *Tree) ValidateScenario(sc service.Scenario) error {
	return validateScenario(t.opts.Variant, t.hasMultipoint, sc)
}

// FilterModeFor returns the zReduce candidate predicate that is sound for
// this tree's variant under the given scenario.
func (t *Tree) FilterModeFor(sc service.Scenario) FilterMode {
	return filterModeFor(t.opts.Variant, sc)
}

// AncestorsCanServe reports whether entries stored at proper ancestors of
// the smallest node containing a facility's EMBR can still contribute
// service under sc. When false, the best-first search can start at the
// containing node alone (the paper's containingQNode initialization).
func (t *Tree) AncestorsCanServe(sc service.Scenario) bool {
	return ancestorsCanServe(t.opts.Variant, sc)
}

// ivScratchPool recycles the Morton-interval scratch NodeCandidates
// hands to the z-list pruning. A stack array would escape through the
// zorder call, costing one heap allocation per visited node on the query
// hot path; the pool makes the steady state allocation-free and keeps
// NodeCandidates safe for concurrent readers.
var ivScratchPool = sync.Pool{
	New: func() any {
		s := make([]zorder.Interval, 0, coverBudget)
		return &s
	},
}

// EntryVisitor receives the entries surviving zReduce. Implementing it
// on a reusable struct (instead of passing a closure) keeps the query
// hot path free of per-node closure allocations.
type EntryVisitor interface {
	VisitEntry(*Entry)
}

// funcVisitor adapts a plain callback to EntryVisitor for callers that
// are not allocation-sensitive.
type funcVisitor struct{ fn func(*Entry) }

func (v funcVisitor) VisitEntry(e *Entry) { v.fn(e) }

// NodeCandidates runs the zReduce pruning over n's own list and calls fn
// for every surviving entry. It only reads the tree and is safe to call
// from concurrent goroutines. Hot paths should prefer NodeCandidatesV
// with a reused visitor: the closure here costs an allocation per call.
func (t *Tree) NodeCandidates(n *Node, embr geo.Rect, mode FilterMode, fn func(*Entry)) {
	t.NodeCandidatesV(n, embr, mode, funcVisitor{fn})
}

// NodeCandidatesV is NodeCandidates with the surviving entries delivered
// to v.VisitEntry.
func (t *Tree) NodeCandidatesV(n *Node, embr geo.Rect, mode FilterMode, v EntryVisitor) {
	var ivs []zorder.Interval
	var scratch *[]zorder.Interval
	if mode == NeedBoth && t.opts.Ordering == ZOrder {
		scratch = ivScratchPool.Get().(*[]zorder.Interval)
		buf := (*scratch)[:0]
		if n.list.len() >= coverMinList {
			// Decomposing the EMBR into Morton intervals only pays off
			// when there are enough buckets to skip.
			ivs = zorder.CoverIntervalsAuto(t.bounds, embr, coverBudget, buf)
		} else {
			ivs = append(buf, zorder.Interval{
				Lo: pointCode(t.bounds, geo.Point{X: embr.MinX, Y: embr.MinY}),
				Hi: pointCode(t.bounds, geo.Point{X: embr.MaxX, Y: embr.MaxY}),
			})
		}
	}
	n.list.candidates(embr, ivs, mode, v)
	if scratch != nil {
		*scratch = ivs[:0]
		ivScratchPool.Put(scratch)
	}
}

// coverBudget bounds the Morton interval decomposition of an EMBR;
// coverMinList is the node list size below which a single naive
// corner-to-corner interval is used instead.
const (
	coverBudget  = 12
	coverMinList = 256
)

// ContainingPath returns the chain of nodes from the root down to the
// smallest node whose rectangle contains r (the last element is the
// paper's containingQNode).
func (t *Tree) ContainingPath(r geo.Rect) []*Node {
	path := []*Node{t.root}
	n := t.root
	for !n.leaf {
		next := (*Node)(nil)
		for q := 0; q < 4; q++ {
			if c := n.children[q]; c != nil && c.rect.ContainsRect(r) {
				next = c
				break
			}
		}
		if next == nil {
			break
		}
		path = append(path, next)
		n = next
	}
	return path
}

// pointCode returns the Morton code of p in the given root space.
func pointCode(bounds geo.Rect, p geo.Point) uint64 {
	return zorder.PointCode(bounds, p)
}

// Rect returns the node's cell rectangle.
func (n *Node) Rect() geo.Rect { return n.rect }

// Depth returns the node's depth (root = 0).
func (n *Node) Depth() int { return n.depth }

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.leaf }

// Child returns the q-th child, which may be nil.
func (n *Node) Child(q int) *Node { return n.children[q] }

// ListLen returns the number of entries stored at this node itself.
func (n *Node) ListLen() int { return n.list.len() }

// OwnUB returns the node's own-list service upper bound for sc.
func (n *Node) OwnUB(sc service.Scenario) float64 { return n.ownUB[sc] }

// TreeUB returns the paper's `sub`: an upper bound on the service value
// obtainable from the subtree rooted at n (own list included).
func (n *Node) TreeUB(sc service.Scenario) float64 { return n.treeUB[sc] }

// ForEachEntry visits the node's own entries; stops early when fn
// returns false.
func (n *Node) ForEachEntry(fn func(Entry) bool) { n.list.forEach(fn) }

// Walk visits n and every descendant in depth-first order.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for q := 0; q < 4; q++ {
		if c := n.children[q]; c != nil {
			c.Walk(fn)
		}
	}
}
