package tqtree

// The tombstone-masked scan over the frozen columnar layout. The live
// serving path (internal/query's Epoch) deletes logically: a frozen base
// index keeps every entry it was built with, and deleted trajectories are
// masked out of scans by ID until a background rebuild folds them away.
// The masked variants below mirror ScoreNode/scoreBucket/scoreRange
// exactly — same pruning, same left-to-right float accumulation — with
// one extra per-entry membership test, kept out of the unmasked hot
// loops so the PR 3 read path is untouched byte for byte.
//
// The node and bucket aggregates (ownUB/treeUB, bucket MBRs and z-id
// ranges) still include masked entries; masking only ever removes
// service, so those aggregates remain sound upper bounds and the
// best-first search terminates with the same exactness guarantee.

import (
	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
	"github.com/trajcover/trajcover/internal/zorder"
)

// ScoreNodeMasked is ScoreNode with the entries of tombstoned
// trajectories skipped (neither scored nor counted). A nil or empty mask
// delegates to ScoreNode, so the masked path is byte-identical — answers
// and work counts — to the unmasked one when nothing is deleted.
func (f *Frozen) ScoreNodeMasked(n int32, embr geo.Rect, mode FilterMode, ss *service.StopSet, sc service.Scenario, dead map[trajectory.ID]struct{}) (so float64, scored int) {
	if len(dead) == 0 {
		return f.ScoreNode(n, embr, mode, ss, sc)
	}
	lo, hi := f.entryOff[n], f.entryOff[n+1]
	if lo == hi {
		return 0, 0
	}
	if f.ordering != ZOrder {
		return f.scoreRangeMasked(lo, hi, embr, mode, ss, sc, 0, 0, dead)
	}
	var ivs []zorder.Interval
	var scratch *[]zorder.Interval
	if mode == NeedBoth {
		scratch = ivScratchPool.Get().(*[]zorder.Interval)
		buf := (*scratch)[:0]
		if int(hi-lo) >= coverMinList {
			ivs = zorder.CoverIntervalsAuto(f.bounds, embr, coverBudget, buf)
		} else {
			ivs = append(buf, zorder.Interval{
				Lo: pointCode(f.bounds, geo.Point{X: embr.MinX, Y: embr.MinY}),
				Hi: pointCode(f.bounds, geo.Point{X: embr.MaxX, Y: embr.MaxY}),
			})
		}
	}
	blo, bhi := f.bucketOff[n], f.bucketOff[n+1]
	if mode != NeedBoth || len(ivs) == 0 {
		for b := blo; b < bhi; b++ {
			so, scored = f.scoreBucketMasked(b, embr, mode, ss, sc, so, scored, dead)
		}
	} else {
		bi := blo
		for _, iv := range ivs {
			for bi < bhi && f.bktMaxStart[bi] < iv.Lo {
				bi++
			}
			for bi < bhi && f.bktMinStart[bi] <= iv.Hi {
				so, scored = f.scoreBucketMasked(bi, embr, mode, ss, sc, so, scored, dead)
				bi++
			}
			if bi == bhi {
				break
			}
		}
	}
	if scratch != nil {
		*scratch = ivs[:0]
		ivScratchPool.Put(scratch)
	}
	return so, scored
}

// scoreBucketMasked is scoreBucket with tombstoned entries skipped.
func (f *Frozen) scoreBucketMasked(b int32, embr geo.Rect, mode FilterMode, ss *service.StopSet, sc service.Scenario, so float64, scored int, dead map[trajectory.ID]struct{}) (float64, int) {
	switch mode {
	case NeedBoth:
		if !embr.Intersects(f.bktStartMBR[b]) || !embr.Intersects(f.bktEndMBR[b]) {
			return so, scored
		}
	case NeedAny:
		if !embr.Intersects(f.bktStartMBR[b]) && !embr.Intersects(f.bktEndMBR[b]) {
			return so, scored
		}
	case NeedOverlap:
		if !embr.Intersects(f.bktFullMBR[b]) {
			return so, scored
		}
	}
	return f.scoreRangeMasked(f.bktEntryOff[b], f.bktEntryOff[b+1], embr, mode, ss, sc, so, scored, dead)
}

// scoreRangeMasked is scoreRange with tombstoned entries skipped.
func (f *Frozen) scoreRangeMasked(lo, hi int32, embr geo.Rect, mode FilterMode, ss *service.StopSet, sc service.Scenario, so float64, scored int, dead map[trajectory.ID]struct{}) (float64, int) {
	alive := func(e int32) bool {
		_, gone := dead[f.trajs[f.entTraj[e]].ID]
		return !gone
	}
	switch mode {
	case NeedBoth:
		for e := lo; e < hi; e++ {
			if embr.Contains(f.entFirst[e]) && embr.Contains(f.entLast[e]) && alive(e) {
				scored++
				so += f.serve(e, sc, ss)
			}
		}
	case NeedAny:
		for e := lo; e < hi; e++ {
			if (embr.Contains(f.entFirst[e]) || embr.Contains(f.entLast[e])) && alive(e) {
				scored++
				so += f.serve(e, sc, ss)
			}
		}
	case NeedOverlap:
		for e := lo; e < hi; e++ {
			if embr.Intersects(f.entMBR[e]) && alive(e) {
				scored++
				so += f.serve(e, sc, ss)
			}
		}
	default:
		panic("tqtree: invalid filter mode")
	}
	return so, scored
}
