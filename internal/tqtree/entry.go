package tqtree

import (
	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Entry is the unit stored in a q-node's trajectory list: either a whole
// user trajectory (TwoPoint and FullTrajectory variants) or a single
// segment of one (Segmented variant).
//
// Each entry caches the Morton codes of its first and last point (in the
// tree's root space) — these are the paper's start/end z-ids — and its
// maximum possible service contribution per scenario, which the q-node
// `sub` upper bounds aggregate.
type Entry struct {
	// Traj is the parent user trajectory.
	Traj *trajectory.Trajectory
	// SegIdx is the segment index for Segmented entries, or -1 when the
	// entry is the whole trajectory.
	SegIdx int

	// first/last/mbr are cached copies of the entry's endpoint geometry:
	// the zReduce filter loops touch nothing but the Entry itself, so
	// bucket scans stay sequential in memory instead of chasing the
	// trajectory pointer per entry.
	first, last geo.Point
	mbr         geo.Rect

	startCode uint64
	endCode   uint64
	ub        [service.NumScenarios]float64
}

// newEntry builds a whole-trajectory entry.
func newEntry(t *trajectory.Trajectory, bounds geo.Rect) Entry {
	e := Entry{Traj: t, SegIdx: -1, first: t.Source(), last: t.Dest(), mbr: t.MBR()}
	e.startCode = pointCode(bounds, e.first)
	e.endCode = pointCode(bounds, e.last)
	// A whole trajectory's normalized service is at most 1 in every
	// scenario.
	e.ub = [service.NumScenarios]float64{1, 1, 1}
	return e
}

// newSegmentEntry builds the i-th segment entry of t.
func newSegmentEntry(t *trajectory.Trajectory, i int, bounds geo.Rect) Entry {
	e := Entry{Traj: t, SegIdx: i, first: t.Points[i], last: t.Points[i+1]}
	e.mbr = geo.NewRect(e.first, e.last)
	e.startCode = pointCode(bounds, e.first)
	e.endCode = pointCode(bounds, e.last)
	// Binary-over-segments counts each served segment as 1.
	e.ub[service.Binary] = 1
	// PointCount: the segment owns its start point; the final segment
	// also owns the trajectory's last point. Owned shares sum to 1 over
	// the whole trajectory.
	owned := 1
	if i == t.NumSegments()-1 {
		owned = 2
	}
	e.ub[service.PointCount] = float64(owned) / float64(t.Len())
	// Length: the segment's share of the total length.
	if L := t.Length(); L > 0 {
		e.ub[service.Length] = t.SegmentLength(i) / L
	}
	return e
}

// First returns the entry's first point.
func (e *Entry) First() geo.Point { return e.first }

// Last returns the entry's last point.
func (e *Entry) Last() geo.Point { return e.last }

// MBR returns the bounding rectangle of the entry's points.
func (e *Entry) MBR() geo.Rect { return e.mbr }

// UB returns the entry's maximum possible service contribution under sc.
func (e *Entry) UB(sc service.Scenario) float64 { return e.ub[sc] }

// IsSegment reports whether the entry is a single segment.
func (e *Entry) IsSegment() bool { return e.SegIdx >= 0 }

// ownedPoints returns the index range [lo, hi) of the parent trajectory's
// points this entry accounts for under PointCount semantics.
func (e *Entry) ownedPoints() (lo, hi int) {
	if e.SegIdx < 0 {
		return 0, e.Traj.Len()
	}
	if e.SegIdx == e.Traj.NumSegments()-1 {
		return e.SegIdx, e.SegIdx + 2
	}
	return e.SegIdx, e.SegIdx + 1
}

// Serve computes the entry's exact service contribution against the given
// stop points under scenario sc and threshold psi.
//
// For whole-trajectory entries this is exactly service.Value. For segment
// entries the semantics are the additive shares documented in DESIGN.md:
// summing Serve over all segment entries of a trajectory reproduces the
// trajectory's PointCount/Length value; Binary counts served segments.
func (e *Entry) Serve(sc service.Scenario, stops []geo.Point, psi float64) float64 {
	return e.ServeSet(sc, service.NewStopSet(stops, psi))
}

// ServeSet is Serve with the stop-membership test delegated to a prepared
// StopSet, so node-level evaluation pays the component indexing cost once
// for all surviving candidates.
func (e *Entry) ServeSet(sc service.Scenario, ss *service.StopSet) float64 {
	if e.SegIdx < 0 {
		if sc == service.Binary {
			// Fast path: Binary needs only the cached endpoints, not a
			// walk of the trajectory's point slice.
			if ss.Served(e.first) && ss.Served(e.last) {
				return 1
			}
			return 0
		}
		return service.ValueSet(sc, e.Traj, ss)
	}
	switch sc {
	case service.Binary:
		if ss.Served(e.first) && ss.Served(e.last) {
			return 1
		}
		return 0
	case service.PointCount:
		lo, hi := e.ownedPoints()
		served := 0
		for i := lo; i < hi; i++ {
			if ss.Served(e.Traj.Points[i]) {
				served++
			}
		}
		return float64(served) / float64(e.Traj.Len())
	case service.Length:
		L := e.Traj.Length()
		if L == 0 {
			return 0
		}
		if ss.Served(e.first) && ss.Served(e.last) {
			return e.Traj.SegmentLength(e.SegIdx) / L
		}
		return 0
	}
	panic("tqtree: invalid scenario")
}

// CoverInto records which of the entry's points the stops cover into the
// user's coverage mask, allocating it in cov on first touch. When
// endpointsOnly is set (TwoPoint-variant trees over multipoint data) only
// the source and destination are tested — the only bits Binary combined
// semantics read, and the only points guaranteed to lie inside the
// entry's storage node.
func (e *Entry) CoverInto(cov service.Coverage, ss *service.StopSet, endpointsOnly bool) {
	var m service.Mask
	mark := func(i int) {
		if ss.Served(e.Traj.Points[i]) {
			if m == nil {
				if m = cov[e.Traj.ID]; m == nil {
					m = service.NewMask(e.Traj.Len())
					cov[e.Traj.ID] = m
				}
			}
			m.Set(i)
		}
	}
	if endpointsOnly && e.SegIdx < 0 {
		mark(0)
		if e.Traj.Len() > 1 {
			mark(e.Traj.Len() - 1)
		}
		return
	}
	lo, hi := e.spanPoints()
	for i := lo; i < hi; i++ {
		mark(i)
	}
}

// spanPoints returns the index range [lo, hi) of all points the entry
// spans (for coverage-mask purposes a segment covers both its endpoints;
// overlap between adjacent segments is harmless because masks are sets).
func (e *Entry) spanPoints() (lo, hi int) {
	if e.SegIdx < 0 {
		return 0, e.Traj.Len()
	}
	return e.SegIdx, e.SegIdx + 2
}
