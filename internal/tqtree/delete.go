package tqtree

import (
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Delete removes a trajectory's entries from the tree and reports whether
// every entry was found. The trajectory must be the same value (same ID
// and points) that was inserted; entries are located by routing exactly
// as Insert routed them. Nodes are not merged on underflow — the tree
// only shrinks logically, which keeps deletion O(depth + β) per entry.
func (t *Tree) Delete(u *trajectory.Trajectory) bool {
	entries := t.appendEntries(nil, u)
	all := true
	for i := range entries {
		if t.deleteEntry(&entries[i]) {
			t.numEntries--
		} else {
			all = false
		}
	}
	if all {
		t.numTrajs--
	}
	return all
}

// deleteEntry walks the routing path of e, removes it from the list of
// the node that stores it, and rolls the upper bounds back along the
// path. Returns false when the entry is not present.
func (t *Tree) deleteEntry(e *Entry) bool {
	// Collect the path from root to the storage node.
	path := make([]*Node, 0, 16)
	n := t.root
	for {
		path = append(path, n)
		if n.leaf {
			break
		}
		q, ok := t.routeQuadrant(n.rect, *e)
		if !ok {
			break
		}
		child := n.children[q]
		if child == nil {
			return false
		}
		n = child
	}
	store := path[len(path)-1]
	if !store.list.remove(e) {
		return false
	}
	for sc := 0; sc < service.NumScenarios; sc++ {
		store.ownUB[sc] -= e.ub[sc]
		if store.ownUB[sc] < 0 {
			store.ownUB[sc] = 0 // guard float drift
		}
	}
	for _, p := range path {
		for sc := 0; sc < service.NumScenarios; sc++ {
			p.treeUB[sc] -= e.ub[sc]
			if p.treeUB[sc] < 0 {
				p.treeUB[sc] = 0
			}
		}
	}
	return true
}

// sameEntry matches stored entries by identity: parent trajectory ID and
// segment index.
func sameEntry(a *Entry, id trajectory.ID, segIdx int) bool {
	return a.Traj.ID == id && a.SegIdx == segIdx
}

// remove deletes the entry matching e's identity from a basic list.
func (l *basicList) remove(e *Entry) bool {
	for i := range l.entries {
		if sameEntry(&l.entries[i], e.Traj.ID, e.SegIdx) {
			l.entries = append(l.entries[:i], l.entries[i+1:]...)
			return true
		}
	}
	return false
}

// remove deletes the entry matching e's identity from a z-list, keeping
// bucket order and aggregates consistent.
func (l *zList) remove(e *Entry) bool {
	for bi, b := range l.buckets {
		if e.startCode < b.minStart || e.startCode > b.maxStart {
			continue
		}
		for i := range b.entries {
			if sameEntry(&b.entries[i], e.Traj.ID, e.SegIdx) {
				b.entries = append(b.entries[:i], b.entries[i+1:]...)
				l.size--
				if len(b.entries) == 0 {
					l.buckets = append(l.buckets[:bi], l.buckets[bi+1:]...)
				} else {
					b.recompute()
				}
				return true
			}
		}
	}
	return false
}
