package tqtree

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func frozenTestUsers(n int, seed int64) []*trajectory.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	users := make([]*trajectory.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		pts := make([]geo.Point, 2+rng.Intn(4))
		for j := range pts {
			pts[j] = geo.Pt(rng.Float64()*10000, rng.Float64()*10000)
		}
		users = append(users, trajectory.MustNew(trajectory.ID(i), pts))
	}
	return users
}

// TestFreezeStructure checks the frozen mirror agrees with the tree on
// the aggregate counts and per-node shape, and that the column view
// round-trips through FrozenFromColumns.
func TestFreezeStructure(t *testing.T) {
	for _, v := range []Variant{TwoPoint, Segmented, FullTrajectory} {
		for _, o := range []Ordering{Basic, ZOrder} {
			users := frozenTestUsers(700, 3)
			tree, err := Build(users, Options{Variant: v, Ordering: o, Beta: 16})
			if err != nil {
				t.Fatal(err)
			}
			f, err := Freeze(tree)
			if err != nil {
				t.Fatal(err)
			}
			if f.NumEntries() != tree.NumEntries() {
				t.Fatalf("%v/%v: frozen %d entries, tree %d", v, o, f.NumEntries(), tree.NumEntries())
			}
			if f.NumTrajectories() != tree.NumTrajectories() {
				t.Fatalf("%v/%v: frozen %d trajectories, tree %d", v, o, f.NumTrajectories(), tree.NumTrajectories())
			}
			nodes := 0
			tree.Root().Walk(func(n *Node) { nodes++ })
			if f.NumNodes() != nodes {
				t.Fatalf("%v/%v: frozen %d nodes, tree %d", v, o, f.NumNodes(), nodes)
			}
			// Root shape must agree.
			root := tree.Root()
			if f.Rect(0) != root.Rect() || f.IsLeaf(0) != root.IsLeaf() || f.ListLen(0) != root.ListLen() {
				t.Fatalf("%v/%v: root shape mismatch", v, o)
			}
			for sc := service.Scenario(0); int(sc) < service.NumScenarios; sc++ {
				if f.TreeUB(0, sc) != root.TreeUB(sc) || f.OwnUB(0, sc) != root.OwnUB(sc) {
					t.Fatalf("%v/%v: root upper bounds mismatch", v, o)
				}
			}

			// Column view must reassemble without loss.
			f2, err := FrozenFromColumns(f.Columns(), f.Trajectories())
			if err != nil {
				t.Fatalf("%v/%v: FrozenFromColumns: %v", v, o, err)
			}
			if f2.NumNodes() != f.NumNodes() || f2.NumEntries() != f.NumEntries() ||
				f2.HasMultipoint() != f.HasMultipoint() {
				t.Fatalf("%v/%v: columns round-trip mismatch", v, o)
			}
		}
	}
}

// TestFrozenFromColumnsRejectsCorruption spot-checks the structural
// validation: broken BFS layout, dangling offsets, and out-of-range
// trajectory references must all error.
func TestFrozenFromColumnsRejectsCorruption(t *testing.T) {
	users := frozenTestUsers(500, 5)
	tree, err := Build(users, Options{Ordering: ZOrder, Beta: 16})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Freeze(tree)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, fn func(c *FrozenColumns)) {
		c := f.Columns()
		// Deep-copy the slices the mutation touches so cases stay
		// independent.
		c.ChildBase = append([]int32(nil), c.ChildBase...)
		c.ChildCount = append([]int32(nil), c.ChildCount...)
		c.EntryOff = append([]int32(nil), c.EntryOff...)
		c.EntTraj = append([]int32(nil), c.EntTraj...)
		c.EntSeg = append([]int32(nil), c.EntSeg...)
		fn(&c)
		if _, err := FrozenFromColumns(c, f.Trajectories()); err == nil {
			t.Fatalf("%s: corruption accepted", name)
		}
	}
	mutate("cyclic child base", func(c *FrozenColumns) { c.ChildBase[1] = 0 })
	mutate("child count overflow", func(c *FrozenColumns) { c.ChildCount[0] = 5 })
	mutate("entry offset overflow", func(c *FrozenColumns) { c.EntryOff[len(c.EntryOff)-1]++ })
	mutate("entry offset regression", func(c *FrozenColumns) {
		c.EntryOff[1] = c.EntryOff[2] + 1
	})
	mutate("trajectory out of range", func(c *FrozenColumns) { c.EntTraj[0] = int32(len(f.Trajectories())) })
	mutate("segment out of range", func(c *FrozenColumns) { c.EntSeg[0] = 1 << 20 })
}

// TestFreezeDoesNotRetainTree proves Freeze copies rather than aliases
// the mutable tree: after dropping the tree, its root node becomes
// garbage even while the frozen index stays live. A finalizer on the
// root observes the collection.
func TestFreezeDoesNotRetainTree(t *testing.T) {
	users := frozenTestUsers(2000, 9)
	collected := make(chan struct{})
	f := func() *Frozen {
		tree, err := Build(users, Options{Ordering: ZOrder})
		if err != nil {
			t.Fatal(err)
		}
		fz, err := Freeze(tree)
		if err != nil {
			t.Fatal(err)
		}
		runtime.SetFinalizer(tree.Root(), func(*Node) { close(collected) })
		return fz
	}()
	deadline := time.After(10 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			runtime.KeepAlive(f)
			return
		case <-deadline:
			t.Fatal("tree root not collected: Freeze retains the mutable tree")
		case <-time.After(10 * time.Millisecond):
		}
	}
}
