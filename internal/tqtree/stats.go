package tqtree

import (
	"fmt"
	"math"

	"github.com/trajcover/trajcover/internal/service"
)

// Stats describes the shape of a TQ-tree for diagnostics and tests.
type Stats struct {
	Nodes         int
	Leaves        int
	MaxDepth      int
	Entries       int
	InternalBlock int // entries stored at internal (inter-node) lists
	LeafBlock     int // entries stored at leaf (intra-node) lists
}

// Stats walks the tree and returns its shape.
func (t *Tree) Stats() Stats {
	var s Stats
	t.root.Walk(func(n *Node) {
		s.Nodes++
		if n.depth > s.MaxDepth {
			s.MaxDepth = n.depth
		}
		s.Entries += n.list.len()
		if n.leaf {
			s.Leaves++
			s.LeafBlock += n.list.len()
		} else {
			s.InternalBlock += n.list.len()
		}
	})
	return s
}

// CheckInvariants verifies the structural invariants the query algorithms
// rely on, returning the first violation found. It is O(total entries ×
// depth) and intended for tests.
//
// Invariants:
//  1. Every entry is stored exactly once (count matches NumEntries).
//  2. An entry's routing rectangle is contained in its storage node's
//     rectangle, and is split by the node's children (no child could hold
//     it) unless the node is a leaf.
//  3. ownUB equals the sum of the node's entries' per-scenario bounds;
//     treeUB equals ownUB plus the children's treeUB.
//  4. Z-ordered lists are sorted by (start, end) code with bucket
//     start-code ranges disjoint and ascending, and no bucket exceeds β.
func (t *Tree) CheckInvariants() error {
	total := 0
	var check func(n *Node) error
	check = func(n *Node) error {
		var own [service.NumScenarios]float64
		var err error
		n.list.forEach(func(e Entry) bool {
			total++
			rr := t.routingRect(e)
			if !n.rect.ContainsRect(rr) {
				err = fmt.Errorf("entry %d/%d routing rect %v outside node rect %v",
					e.Traj.ID, e.SegIdx, rr, n.rect)
				return false
			}
			if !n.leaf {
				if q, ok := t.routeQuadrant(n.rect, e); ok {
					err = fmt.Errorf("entry %d/%d at internal node but routable to child %d",
						e.Traj.ID, e.SegIdx, q)
					return false
				}
			}
			for sc := 0; sc < service.NumScenarios; sc++ {
				own[sc] += e.ub[sc]
			}
			return true
		})
		if err != nil {
			return err
		}
		tree := own
		for q := 0; q < 4; q++ {
			c := n.children[q]
			if c == nil {
				continue
			}
			if n.leaf {
				return fmt.Errorf("leaf node at depth %d has child %d", n.depth, q)
			}
			if !n.rect.ContainsRect(c.rect) {
				return fmt.Errorf("child %d rect %v outside parent %v", q, c.rect, n.rect)
			}
			if err := check(c); err != nil {
				return err
			}
			for sc := 0; sc < service.NumScenarios; sc++ {
				tree[sc] += c.treeUB[sc]
			}
		}
		for sc := 0; sc < service.NumScenarios; sc++ {
			if math.Abs(own[sc]-n.ownUB[sc]) > 1e-6*(1+own[sc]) {
				return fmt.Errorf("node depth %d ownUB[%d] = %v, recomputed %v",
					n.depth, sc, n.ownUB[sc], own[sc])
			}
			if math.Abs(tree[sc]-n.treeUB[sc]) > 1e-6*(1+tree[sc]) {
				return fmt.Errorf("node depth %d treeUB[%d] = %v, recomputed %v",
					n.depth, sc, n.treeUB[sc], tree[sc])
			}
		}
		if zl, ok := n.list.(*zList); ok {
			if err := zl.checkSorted(t.opts.Beta); err != nil {
				return fmt.Errorf("node depth %d: %w", n.depth, err)
			}
		}
		return nil
	}
	if err := check(t.root); err != nil {
		return err
	}
	if total != t.numEntries {
		return fmt.Errorf("stored entries = %d, tree reports %d", total, t.numEntries)
	}
	return nil
}

// checkSorted verifies z-list ordering, bucket range disjointness, and β.
func (l *zList) checkSorted(beta int) error {
	var prevMax uint64
	first := true
	for i, b := range l.buckets {
		if len(b.entries) == 0 {
			return fmt.Errorf("bucket %d empty", i)
		}
		if len(b.entries) > beta {
			return fmt.Errorf("bucket %d has %d entries > beta %d", i, len(b.entries), beta)
		}
		for j := 1; j < len(b.entries); j++ {
			if entryLess(b.entries[j], b.entries[j-1]) {
				return fmt.Errorf("bucket %d not sorted at %d", i, j)
			}
		}
		if b.entries[0].startCode != b.minStart ||
			b.entries[len(b.entries)-1].startCode != b.maxStart {
			return fmt.Errorf("bucket %d min/max start codes stale", i)
		}
		if !first && b.minStart < prevMax {
			return fmt.Errorf("bucket %d start range overlaps previous", i)
		}
		prevMax = b.maxStart
		first = false
	}
	return nil
}
