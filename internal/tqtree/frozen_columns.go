package tqtree

import (
	"fmt"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// FrozenColumns is the serializable flat view of a Frozen index: exactly
// the column slices, with no behavior. The snapshot layer writes these
// slices nearly verbatim (TQSNAP03/TQSHRD02) and reconstructs a Frozen
// with FrozenFromColumns, which re-checks every structural invariant so a
// corrupt or hostile stream fails with an error instead of an
// out-of-bounds panic or an unterminated traversal.
type FrozenColumns struct {
	Variant  Variant
	Ordering Ordering
	Beta     int
	MaxDepth int
	Bounds   geo.Rect

	NodeRect   []geo.Rect
	ChildBase  []int32
	ChildCount []int32
	EntryOff   []int32
	BucketOff  []int32
	OwnUB      []float64
	TreeUB     []float64

	BktEntryOff []int32
	BktMinStart []uint64
	BktMaxStart []uint64
	BktStartMBR []geo.Rect
	BktEndMBR   []geo.Rect
	BktFullMBR  []geo.Rect

	EntFirst []geo.Point
	EntLast  []geo.Point
	EntMBR   []geo.Rect
	EntTraj  []int32
	EntSeg   []int32
}

// Columns returns the index's column slices. The slices are shared, not
// copied: callers must treat them as read-only.
func (f *Frozen) Columns() FrozenColumns {
	return FrozenColumns{
		Variant:  f.variant,
		Ordering: f.ordering,
		Beta:     f.beta,
		MaxDepth: f.maxDepth,
		Bounds:   f.bounds,

		NodeRect:   f.nodeRect,
		ChildBase:  f.childBase,
		ChildCount: f.childCount,
		EntryOff:   f.entryOff,
		BucketOff:  f.bucketOff,
		OwnUB:      f.ownUB,
		TreeUB:     f.treeUB,

		BktEntryOff: f.bktEntryOff,
		BktMinStart: f.bktMinStart,
		BktMaxStart: f.bktMaxStart,
		BktStartMBR: f.bktStartMBR,
		BktEndMBR:   f.bktEndMBR,
		BktFullMBR:  f.bktFullMBR,

		EntFirst: f.entFirst,
		EntLast:  f.entLast,
		EntMBR:   f.entMBR,
		EntTraj:  f.entTraj,
		EntSeg:   f.entSeg,
	}
}

// FrozenFromColumns assembles a Frozen from deserialized columns and its
// trajectory table, validating every structural invariant the query paths
// rely on. The slices are adopted, not copied.
func FrozenFromColumns(c FrozenColumns, trajs []*trajectory.Trajectory) (*Frozen, error) {
	if c.Variant < TwoPoint || c.Variant > FullTrajectory {
		return nil, fmt.Errorf("tqtree: frozen columns: invalid variant %d", int(c.Variant))
	}
	if c.Ordering < Basic || c.Ordering > ZOrder {
		return nil, fmt.Errorf("tqtree: frozen columns: invalid ordering %d", int(c.Ordering))
	}
	if c.Beta <= 0 || c.MaxDepth <= 0 {
		return nil, fmt.Errorf("tqtree: frozen columns: invalid beta %d / max depth %d", c.Beta, c.MaxDepth)
	}
	nn := len(c.NodeRect)
	if nn == 0 {
		return nil, fmt.Errorf("tqtree: frozen columns: no nodes")
	}
	if len(c.ChildBase) != nn || len(c.ChildCount) != nn || len(c.EntryOff) != nn+1 {
		return nil, fmt.Errorf("tqtree: frozen columns: node column length mismatch")
	}
	if len(c.OwnUB) != nn*service.NumScenarios || len(c.TreeUB) != nn*service.NumScenarios {
		return nil, fmt.Errorf("tqtree: frozen columns: upper-bound column length mismatch")
	}
	ne := len(c.EntFirst)
	if len(c.EntLast) != ne || len(c.EntMBR) != ne ||
		len(c.EntTraj) != ne || len(c.EntSeg) != ne {
		return nil, fmt.Errorf("tqtree: frozen columns: entry column length mismatch")
	}

	// The BFS layout fully determines a valid forest: node 0 is the root
	// and the children of nodes in id order occupy sequential blocks, so
	// a single cursor sweep proves there are no cycles, no sharing, and
	// no out-of-range child references.
	cursor := int32(1)
	for i := 0; i < nn; i++ {
		cnt := c.ChildCount[i]
		if cnt < 0 || cnt > 4 {
			return nil, fmt.Errorf("tqtree: frozen columns: node %d has %d children", i, cnt)
		}
		if c.ChildBase[i] != cursor {
			return nil, fmt.Errorf("tqtree: frozen columns: node %d child base %d, want %d", i, c.ChildBase[i], cursor)
		}
		cursor += cnt
		if cursor > int32(nn) {
			return nil, fmt.Errorf("tqtree: frozen columns: child range of node %d exceeds %d nodes", i, nn)
		}
	}
	if cursor != int32(nn) {
		return nil, fmt.Errorf("tqtree: frozen columns: %d nodes unreachable from the BFS layout", int32(nn)-cursor)
	}

	// Entry offsets: cumulative over the slab.
	if c.EntryOff[0] != 0 || c.EntryOff[nn] != int32(ne) {
		return nil, fmt.Errorf("tqtree: frozen columns: entry offsets do not span the slab")
	}
	for i := 0; i < nn; i++ {
		if c.EntryOff[i] > c.EntryOff[i+1] {
			return nil, fmt.Errorf("tqtree: frozen columns: entry offsets not monotonic at node %d", i)
		}
	}

	nb := len(c.BktMinStart)
	if c.Ordering == ZOrder {
		if len(c.BucketOff) != nn+1 || len(c.BktEntryOff) != nb+1 ||
			len(c.BktMaxStart) != nb || len(c.BktStartMBR) != nb ||
			len(c.BktEndMBR) != nb || len(c.BktFullMBR) != nb {
			return nil, fmt.Errorf("tqtree: frozen columns: bucket column length mismatch")
		}
		if c.BucketOff[0] != 0 || c.BucketOff[nn] != int32(nb) {
			return nil, fmt.Errorf("tqtree: frozen columns: bucket offsets do not span the buckets")
		}
		for i := 0; i < nn; i++ {
			if c.BucketOff[i] > c.BucketOff[i+1] {
				return nil, fmt.Errorf("tqtree: frozen columns: bucket offsets not monotonic at node %d", i)
			}
			// Buckets and entries were emitted together, so a node's
			// first bucket must start exactly at its first entry.
			if c.BucketOff[i] < int32(nb) && c.BktEntryOff[c.BucketOff[i]] != c.EntryOff[i] {
				return nil, fmt.Errorf("tqtree: frozen columns: bucket/entry offsets disagree at node %d", i)
			}
		}
		if c.BktEntryOff[0] != 0 || c.BktEntryOff[nb] != int32(ne) {
			return nil, fmt.Errorf("tqtree: frozen columns: bucket entry offsets do not span the slab")
		}
		for b := 0; b < nb; b++ {
			if c.BktEntryOff[b] > c.BktEntryOff[b+1] {
				return nil, fmt.Errorf("tqtree: frozen columns: bucket entry offsets not monotonic at bucket %d", b)
			}
		}
	} else if nb != 0 || len(c.BucketOff) != 0 || len(c.BktEntryOff) != 0 {
		return nil, fmt.Errorf("tqtree: frozen columns: basic ordering with bucket columns")
	}

	hasMultipoint := false
	for _, t := range trajs {
		if t.Len() > 2 {
			hasMultipoint = true
			break
		}
	}
	for e := 0; e < ne; e++ {
		ti := c.EntTraj[e]
		if ti < 0 || int(ti) >= len(trajs) {
			return nil, fmt.Errorf("tqtree: frozen columns: entry %d references trajectory %d of %d", e, ti, len(trajs))
		}
		if seg := c.EntSeg[e]; seg < -1 || (seg >= 0 && int(seg) >= trajs[ti].NumSegments()) {
			return nil, fmt.Errorf("tqtree: frozen columns: entry %d has segment %d of %d", e, seg, trajs[ti].NumSegments())
		}
	}

	return &Frozen{
		variant:       c.Variant,
		ordering:      c.Ordering,
		beta:          c.Beta,
		maxDepth:      c.MaxDepth,
		bounds:        c.Bounds,
		hasMultipoint: hasMultipoint,

		nodeRect:   c.NodeRect,
		childBase:  c.ChildBase,
		childCount: c.ChildCount,
		entryOff:   c.EntryOff,
		bucketOff:  c.BucketOff,
		ownUB:      c.OwnUB,
		treeUB:     c.TreeUB,

		bktEntryOff: c.BktEntryOff,
		bktMinStart: c.BktMinStart,
		bktMaxStart: c.BktMaxStart,
		bktStartMBR: c.BktStartMBR,
		bktEndMBR:   c.BktEndMBR,
		bktFullMBR:  c.BktFullMBR,

		entFirst: c.EntFirst,
		entLast:  c.EntLast,
		entMBR:   c.EntMBR,
		entTraj:  c.EntTraj,
		entSeg:   c.EntSeg,

		trajs: trajs,
	}, nil
}
