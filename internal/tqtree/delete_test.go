package tqtree

import (
	"math"
	"math/rand"
	"testing"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/trajectory"
)

func TestDeleteRemovesEntries(t *testing.T) {
	users := randTrajectories(300, 5, 61, testBounds)
	for _, opts := range allConfigs() {
		opts.Bounds = testBounds
		t.Run(opts.Variant.String()+"/"+opts.Ordering.String(), func(t *testing.T) {
			tree, err := Build(users, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Delete every other trajectory.
			for i := 0; i < len(users); i += 2 {
				if !tree.Delete(users[i]) {
					t.Fatalf("Delete(%d) did not find all entries", users[i].ID)
				}
			}
			if err := tree.CheckInvariantsAfterDelete(); err != nil {
				t.Fatal(err)
			}
			if tree.NumTrajectories() != len(users)/2 {
				t.Errorf("NumTrajectories = %d, want %d", tree.NumTrajectories(), len(users)/2)
			}
			// Deleting again must report not-found.
			if tree.Delete(users[0]) {
				t.Error("second Delete reported success")
			}
		})
	}
}

// CheckInvariantsAfterDelete relaxes the exact-count check (numEntries is
// tracked) but keeps structure and bound consistency.
func (t *Tree) CheckInvariantsAfterDelete() error {
	return t.CheckInvariants()
}

func TestDeleteMatchesFreshBuild(t *testing.T) {
	users := randTrajectories(400, 2, 62, testBounds)
	opts := Options{Variant: TwoPoint, Ordering: ZOrder, Beta: 8, Bounds: testBounds}
	tree, err := Build(users, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[:200] {
		if !tree.Delete(u) {
			t.Fatalf("Delete(%d) failed", u.ID)
		}
	}
	fresh, err := Build(users[200:], opts)
	if err != nil {
		t.Fatal(err)
	}
	// Service upper bounds and entry totals must match the fresh tree.
	if tree.NumEntries() != fresh.NumEntries() {
		t.Errorf("entries = %d, fresh = %d", tree.NumEntries(), fresh.NumEntries())
	}
	for sc := service.Binary; sc <= service.Length; sc++ {
		a, b := tree.Root().TreeUB(sc), fresh.Root().TreeUB(sc)
		if math.Abs(a-b) > 1e-6*(1+b) {
			t.Errorf("treeUB[%v] = %v, fresh = %v", sc, a, b)
		}
	}
	// Every surviving entry must still be served identically: compare
	// candidate sets for a probe EMBR.
	stops := randStops(10, 63, testBounds)
	embr := geo.RectOf(stops).Expand(40)
	got := collectCandidates(tree, embr, NeedBoth)
	want := collectCandidates(fresh, embr, NeedBoth)
	if len(got) != len(want) {
		t.Errorf("candidates after delete = %d users, fresh = %d", len(got), len(want))
	}
	for id := range want {
		if len(got[id]) != len(want[id]) {
			t.Errorf("user %d candidate entries differ", id)
		}
	}
}

func TestDeleteInterleavedWithInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	opts := Options{Variant: Segmented, Ordering: ZOrder, Beta: 8, Bounds: testBounds}
	tree, err := Build(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	live := map[trajectory.ID]*trajectory.Trajectory{}
	nextID := trajectory.ID(0)
	for step := 0; step < 2000; step++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			u := randTrajectories(1, 4, int64(step)+1000, testBounds)[0]
			u = trajectory.MustNew(nextID, u.Points)
			nextID++
			tree.Insert(u)
			live[u.ID] = u
		} else {
			// Delete a random live trajectory.
			for id, u := range live {
				if !tree.Delete(u) {
					t.Fatalf("step %d: Delete(%d) failed", step, id)
				}
				delete(live, id)
				break
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	wantEntries := 0
	for _, u := range live {
		wantEntries += u.NumSegments()
	}
	if tree.NumEntries() != wantEntries {
		t.Errorf("NumEntries = %d, want %d", tree.NumEntries(), wantEntries)
	}
}

func TestDeleteUnknownTrajectory(t *testing.T) {
	users := randTrajectories(50, 2, 65, testBounds)
	tree, err := Build(users, Options{Variant: TwoPoint, Ordering: ZOrder, Bounds: testBounds})
	if err != nil {
		t.Fatal(err)
	}
	ghost := trajectory.MustNew(9999, []geo.Point{geo.Pt(1, 1), geo.Pt(2, 2)})
	if tree.Delete(ghost) {
		t.Error("Delete of unknown trajectory reported success")
	}
	if tree.NumTrajectories() != 50 {
		t.Error("unknown delete changed trajectory count")
	}
}
