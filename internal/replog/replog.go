// Package replog is the in-memory replication log behind the
// distributed serving tier: a bounded, sequence-numbered record of the
// acknowledged write history of one primary process, served to replicas
// over GET /v1/changes as a WAL tail they apply after restoring the
// primary's snapshot.
//
// The log is intentionally NOT the durability layer — internal/wal is.
// It exists so a replica can follow the primary without touching the
// primary's disk: the primary appends each acknowledged Insert/Delete
// (cheap: the trajectory pointers are shared with the index), replicas
// pull ordered suffixes by sequence number, and a replica that falls
// behind the bounded window learns it loudly (After reports the trim)
// and re-bootstraps from a fresh snapshot instead of silently serving a
// gapped history.
//
// Boot identity: every Log carries a random BootID minted at creation.
// A primary that crashes and recovers from its WAL starts a NEW log —
// sequence numbers restart at zero against the recovered corpus — so a
// replica pins the BootID it bootstrapped against and treats a mismatch
// exactly like a trim: re-bootstrap. Sequence numbers alone can never
// be compared across primary incarnations.
package replog

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
)

// Op names a replicated write.
type Op string

const (
	// OpInsert replicates an acknowledged Insert.
	OpInsert Op = "insert"
	// OpDelete replicates an acknowledged Delete.
	OpDelete Op = "delete"
)

// Entry is one acknowledged write on the replication wire. Points is
// nil for deletes. Coordinates travel as float64 pairs exactly like the
// public JSON API, so a replayed insert reproduces the primary's
// trajectory bit-exactly.
type Entry struct {
	Seq    uint64       `json:"seq"`
	Op     Op           `json:"op"`
	ID     uint32       `json:"id"`
	Points [][2]float64 `json:"points,omitempty"`
}

// Stats is the log's observable state (served under /statsz).
type Stats struct {
	BootID string `json:"boot_id"`
	// Seq is the sequence number of the newest entry (0 when empty).
	Seq uint64 `json:"seq"`
	// Oldest is the sequence number of the oldest retained entry (0
	// when nothing has been trimmed and nothing appended).
	Oldest uint64 `json:"oldest"`
	// Len is the number of retained entries; Cap the retention bound.
	Len int `json:"len"`
	Cap int `json:"cap"`
	// Trimmed counts entries dropped by the retention bound since boot.
	Trimmed uint64 `json:"trimmed"`
}

// DefaultCap bounds retained entries when New is given a non-positive
// capacity. At ~100 bytes per entry this keeps the window under ~7 MiB
// while covering far more history than a replica's poll interval needs.
const DefaultCap = 1 << 16

// Log is a bounded in-memory replication log. All methods are safe for
// concurrent use.
type Log struct {
	mu      sync.Mutex
	boot    string
	buf     []Entry // buf[0].Seq == start+1 when non-empty
	start   uint64  // seq of the entry before buf[0] (== trimmed high-water)
	seq     uint64  // seq of the newest appended entry
	cap     int
	trimmed uint64
	// wake is closed and replaced on every append — the broadcast
	// primitive Wait's long-poll blocks on.
	wake chan struct{}
}

// New builds an empty log retaining at most cap entries (<= 0:
// DefaultCap) under a freshly minted BootID.
func New(cap int) *Log {
	if cap <= 0 {
		cap = DefaultCap
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("replog: no entropy for boot id: " + err.Error())
	}
	return &Log{
		boot: hex.EncodeToString(b[:]),
		cap:  cap,
		wake: make(chan struct{}),
	}
}

// BootID returns this log's boot identity.
func (l *Log) BootID() string { return l.boot }

// Seq returns the sequence number of the newest appended entry (0 when
// nothing has been appended this boot).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Append assigns the next sequence number to e, retains it (trimming
// the oldest entry past the capacity bound), wakes long-pollers, and
// returns the assigned sequence number.
func (l *Log) Append(e Entry) uint64 {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.buf = append(l.buf, e)
	if len(l.buf) > l.cap {
		drop := len(l.buf) - l.cap
		l.start += uint64(drop)
		l.trimmed += uint64(drop)
		l.buf = append(l.buf[:0], l.buf[drop:]...)
	}
	wake := l.wake
	l.wake = make(chan struct{})
	l.mu.Unlock()
	close(wake)
	return e.Seq
}

// After returns up to limit entries with Seq > after, in sequence
// order. ok is false when `after` precedes the retained window — the
// caller missed trimmed history and must re-bootstrap from a snapshot;
// entries are nil then. limit <= 0 means no bound.
func (l *Log) After(after uint64, limit int) (entries []Entry, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.start {
		return nil, false
	}
	if after >= l.seq {
		return nil, true
	}
	i := int(after - l.start) // index of the first wanted entry
	n := len(l.buf) - i
	if limit > 0 && n > limit {
		n = limit
	}
	entries = make([]Entry, n)
	copy(entries, l.buf[i:i+n])
	return entries, true
}

// WaitChan returns a channel that is closed by the next Append after
// the call, together with the current newest sequence number. A
// long-polling handler checks seq > after first, and otherwise selects
// on the channel and its deadline.
func (l *Log) WaitChan() (<-chan struct{}, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wake, l.seq
}

// Snapshot reports the log's observable state.
func (l *Log) Snapshot() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		BootID:  l.boot,
		Seq:     l.seq,
		Oldest:  l.start,
		Len:     len(l.buf),
		Cap:     l.cap,
		Trimmed: l.trimmed,
	}
}
