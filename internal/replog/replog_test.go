package replog

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func entry(i int) Entry {
	return Entry{Op: OpInsert, ID: uint32(i), Points: [][2]float64{{float64(i), 1}, {2, 3}}}
}

// TestLogAppendAfter pins the core contract: sequence numbers are dense
// from 1, After(after) returns exactly the suffix past `after` in order,
// and limit bounds the page without losing position.
func TestLogAppendAfter(t *testing.T) {
	l := New(100)
	if l.Seq() != 0 {
		t.Fatalf("fresh log seq = %d", l.Seq())
	}
	if got, ok := l.After(0, 0); !ok || got != nil {
		t.Fatalf("After on empty log = (%v, %v), want (nil, true)", got, ok)
	}
	for i := 1; i <= 10; i++ {
		if seq := l.Append(entry(i)); seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	got, ok := l.After(3, 0)
	if !ok || len(got) != 7 {
		t.Fatalf("After(3) = %d entries, ok=%v", len(got), ok)
	}
	for i, e := range got {
		if e.Seq != uint64(4+i) || e.ID != uint32(4+i) {
			t.Fatalf("After(3)[%d] = seq %d id %d", i, e.Seq, e.ID)
		}
	}
	// Paged read: two pages of 4 then the remainder reassemble the suffix.
	page1, _ := l.After(0, 4)
	page2, _ := l.After(page1[len(page1)-1].Seq, 4)
	page3, _ := l.After(page2[len(page2)-1].Seq, 4)
	if len(page1) != 4 || len(page2) != 4 || len(page3) != 2 {
		t.Fatalf("pages %d/%d/%d, want 4/4/2", len(page1), len(page2), len(page3))
	}
	if page3[1].Seq != 10 {
		t.Fatalf("last paged seq %d, want 10", page3[1].Seq)
	}
	// Caught up: nil, true.
	if got, ok := l.After(10, 0); !ok || got != nil {
		t.Fatalf("After(head) = (%v, %v), want (nil, true)", got, ok)
	}
}

// TestLogTrim overflows the retention bound and asserts the window
// slides, readers inside the window still succeed, and readers whose
// position was trimmed away get the loud ok=false re-bootstrap signal.
func TestLogTrim(t *testing.T) {
	l := New(4)
	for i := 1; i <= 10; i++ {
		l.Append(entry(i))
	}
	st := l.Snapshot()
	if st.Len != 4 || st.Cap != 4 || st.Seq != 10 || st.Oldest != 6 || st.Trimmed != 6 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	// after == Oldest is the boundary: entry 6 is gone but position 6 is
	// exactly the start of the window, so the read succeeds from 7.
	got, ok := l.After(6, 0)
	if !ok || len(got) != 4 || got[0].Seq != 7 {
		t.Fatalf("After(oldest) = %d entries from %d, ok=%v", len(got), got[0].Seq, ok)
	}
	// after < Oldest: the caller's next entry was trimmed — re-bootstrap.
	if _, ok := l.After(5, 0); ok {
		t.Fatal("After(trimmed position) reported ok")
	}
	if _, ok := l.After(0, 0); ok {
		t.Fatal("After(0) after trim reported ok")
	}
}

// TestLogWaitChan: the channel returned before an append is closed by
// it, and the seq returned alongside lets the caller skip the wait when
// entries already exist.
func TestLogWaitChan(t *testing.T) {
	l := New(10)
	ch, seq := l.WaitChan()
	if seq != 0 {
		t.Fatalf("WaitChan seq = %d", seq)
	}
	select {
	case <-ch:
		t.Fatal("wake channel closed before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Error("append never woke the waiter")
		}
	}()
	l.Append(entry(1))
	<-done
	// The replaced channel covers the NEXT append only.
	ch2, seq2 := l.WaitChan()
	if seq2 != 1 {
		t.Fatalf("WaitChan after append seq = %d", seq2)
	}
	select {
	case <-ch2:
		t.Fatal("fresh wake channel already closed")
	default:
	}
}

// TestLogBootID: distinct logs mint distinct boot identities (the
// property replica re-bootstrap detection stands on).
func TestLogBootID(t *testing.T) {
	a, b := New(1), New(1)
	if a.BootID() == "" || len(a.BootID()) != 16 {
		t.Fatalf("boot id %q, want 16 hex chars", a.BootID())
	}
	if a.BootID() == b.BootID() {
		t.Fatalf("two logs share boot id %q", a.BootID())
	}
}

// TestLogConcurrentAppendRead hammers Append from several writers while
// readers page through; run under -race. Every reader must observe a
// dense, strictly increasing sequence.
func TestLogConcurrentAppendRead(t *testing.T) {
	l := New(1 << 12)
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Append(entry(w*perWriter + i))
			}
		}(w)
	}
	var readErr error
	var readOnce sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		var after uint64
		for after < writers*perWriter {
			got, ok := l.After(after, 32)
			if !ok {
				readOnce.Do(func() { readErr = fmt.Errorf("reader trimmed out at %d", after) })
				return
			}
			for _, e := range got {
				if e.Seq != after+1 {
					readOnce.Do(func() { readErr = fmt.Errorf("gap: got seq %d after %d", e.Seq, after) })
					return
				}
				after = e.Seq
			}
		}
	}()
	wg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if l.Seq() != writers*perWriter {
		t.Fatalf("final seq %d, want %d", l.Seq(), writers*perWriter)
	}
}
