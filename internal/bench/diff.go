package bench

// Perf-trajectory diffing: join two tqbench -json runs (BENCH_*.json)
// on (experiment, x, method) and flag regressions. This is the engine
// behind `tqbench -diff old.json new.json`, which CI runs against the
// previous workflow artifact so a slowdown on the timing/throughput
// series fails the build instead of landing silently.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// DiffDirection says which way a series' y-axis points.
type DiffDirection int

const (
	// LowerIsBetter gates series measured in seconds.
	LowerIsBetter DiffDirection = iota
	// HigherIsBetter gates throughput series (queries/sec).
	HigherIsBetter
	// Informational series (quality metrics, counts) are printed but
	// never gate.
	Informational
)

// directionOf infers the gate direction from the row's y-axis label.
// Experiments label timing series with "seconds" and throughput series
// with "/sec"; anything else (users served, approximation ratios,
// dataset inventories) is informational.
func directionOf(yLabel string) DiffDirection {
	l := strings.ToLower(yLabel)
	// Throughput first: the shards experiment's label mentions both
	// ("queries/sec (build series: seconds)"), and its series are
	// predominantly rates.
	if strings.Contains(l, "/sec") || strings.Contains(l, "per second") {
		return HigherIsBetter
	}
	if strings.Contains(l, "seconds") {
		return LowerIsBetter
	}
	return Informational
}

// DiffRow is one joined (experiment, x, method) measurement pair.
type DiffRow struct {
	Experiment string
	X          string
	Method     string
	Direction  DiffDirection
	Old, New   float64
	// Delta is the relative change (New-Old)/Old; +0.25 means the new
	// value is 25% higher.
	Delta float64
	// Regressed marks a gated row whose change exceeds the threshold in
	// the worse direction.
	Regressed bool
	// BelowFloor marks a timing/throughput row whose baseline operation
	// is faster than minGatePerOp: printed, never gated.
	BelowFloor bool
	// OnlyOld/OnlyNew mark rows missing from the other run (experiment
	// sets changed); such rows never gate.
	OnlyOld, OnlyNew bool
}

// minGatePerOp is the baseline per-operation duration (seconds) below
// which a timing/throughput row is too noise-dominated to gate: on
// shared CI runners, sub-millisecond operations routinely swing 2×
// between runs from scheduler, frequency, and cache effects alone, and
// one noisy baseline on main would then fail every subsequent push.
// Rows under the floor are still printed, just never counted.
const minGatePerOp = 1e-3

// perOpSeconds converts a gated row's baseline to a per-operation
// duration: seconds series carry it directly, throughput series invert.
func perOpSeconds(d DiffDirection, oldY float64) float64 {
	switch d {
	case LowerIsBetter:
		return oldY
	case HigherIsBetter:
		if oldY > 0 {
			return 1 / oldY
		}
	}
	return 0
}

// ReadRunDoc parses a tqbench -json document.
func ReadRunDoc(r io.Reader) (RunDoc, error) {
	var doc RunDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return RunDoc{}, fmt.Errorf("bench: parse run document: %w", err)
	}
	return doc, nil
}

func diffKey(r Row) string {
	return r.Experiment + "\x00" + r.X + "\x00" + r.Method
}

// rowDirection resolves a row's gate direction. Mixed-unit tables (the
// shards and frozen experiments) label their throughput axis "/sec" but
// mark individual seconds series with an "(s)" suffix on the method or
// x-tick; those rows gate as timings. An "(n)" suffix marks count
// series inside a timing table (the churn experiment's swap counter):
// informational, printed but never gated.
func rowDirection(r Row) DiffDirection {
	if strings.Contains(r.Method, "(n)") || strings.Contains(r.X, "(n)") {
		return Informational
	}
	d := directionOf(r.YLabel)
	if d == HigherIsBetter && (strings.Contains(r.Method, "(s)") || strings.Contains(r.X, "(s)")) {
		return LowerIsBetter
	}
	return d
}

// DiffDocs joins two runs on (experiment, x, method) and returns the
// per-series deltas in a stable order, plus the number of gated rows
// whose slowdown exceeds threshold (e.g. 0.25 = 25% worse). Rows whose
// old value is zero, whose series is informational, or which exist in
// only one run are reported but never counted as regressions.
func DiffDocs(oldDoc, newDoc RunDoc, threshold float64) ([]DiffRow, int) {
	oldRows := make(map[string]Row, len(oldDoc.Rows))
	for _, r := range oldDoc.Rows {
		oldRows[diffKey(r)] = r
	}
	seen := make(map[string]bool, len(newDoc.Rows))
	out := make([]DiffRow, 0, len(newDoc.Rows))
	regressions := 0
	for _, nr := range newDoc.Rows {
		key := diffKey(nr)
		seen[key] = true
		d := DiffRow{
			Experiment: nr.Experiment,
			X:          nr.X,
			Method:     nr.Method,
			Direction:  rowDirection(nr),
			New:        nr.Y,
		}
		or, ok := oldRows[key]
		if !ok {
			d.OnlyNew = true
			out = append(out, d)
			continue
		}
		d.Old = or.Y
		if or.Y != 0 {
			d.Delta = (nr.Y - or.Y) / or.Y
			if d.Direction != Informational && perOpSeconds(d.Direction, or.Y) < minGatePerOp {
				d.BelowFloor = true
			} else {
				switch d.Direction {
				case LowerIsBetter:
					d.Regressed = d.Delta > threshold
				case HigherIsBetter:
					d.Regressed = -d.Delta > threshold
				}
			}
			if d.Regressed {
				regressions++
			}
		}
		out = append(out, d)
	}
	for key, or := range oldRows {
		if seen[key] {
			continue
		}
		out = append(out, DiffRow{
			Experiment: or.Experiment,
			X:          or.X,
			Method:     or.Method,
			Direction:  rowDirection(or),
			Old:        or.Y,
			OnlyOld:    true,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].X < out[j].X
	})
	return out, regressions
}

// PrintDiff renders the joined rows, one line each, regressions marked.
func PrintDiff(w io.Writer, rows []DiffRow, threshold float64) {
	fmt.Fprintf(w, "# bench diff (regression threshold %+.0f%%)\n", threshold*100)
	for _, d := range rows {
		tag := ""
		switch {
		case d.OnlyNew:
			fmt.Fprintf(w, "  %-10s %-14s x=%-8s new-only  new=%.6g\n", d.Experiment, d.Method, d.X, d.New)
			continue
		case d.OnlyOld:
			fmt.Fprintf(w, "  %-10s %-14s x=%-8s old-only  old=%.6g\n", d.Experiment, d.Method, d.X, d.Old)
			continue
		case d.Regressed:
			tag = "  REGRESSED"
		case d.BelowFloor:
			tag = "  (sub-ms op, not gated)"
		case d.Direction == Informational:
			tag = "  (info)"
		}
		fmt.Fprintf(w, "  %-10s %-14s x=%-8s old=%-12.6g new=%-12.6g delta=%+7.1f%%%s\n",
			d.Experiment, d.Method, d.X, d.Old, d.New, d.Delta*100, tag)
	}
}
