package bench

import (
	"bytes"
	"strings"
	"testing"
)

func diffDoc(rows ...Row) RunDoc { return RunDoc{Rows: rows} }

func timeRow(exp, x, method string, y float64) Row {
	return Row{Experiment: exp, X: x, Method: method, YLabel: "seconds per query", Y: y}
}

func qpsRow(exp, x, method string, y float64) Row {
	return Row{Experiment: exp, X: x, Method: method, YLabel: "queries/sec", Y: y}
}

func infoRow(exp, x, method string, y float64) Row {
	return Row{Experiment: exp, X: x, Method: method, YLabel: "#users served", Y: y}
}

func TestDiffDocsGatesDirections(t *testing.T) {
	old := diffDoc(
		timeRow("fig7a", "1", "TQ(Z)", 1.0),
		timeRow("fig7a", "2", "TQ(Z)", 1.0),
		qpsRow("thrpt", "4", "ServiceValues", 100),
		qpsRow("thrpt", "8", "ServiceValues", 100),
		infoRow("fig10b", "1", "G-TQ(Z)", 500),
	)
	niu := diffDoc(
		timeRow("fig7a", "1", "TQ(Z)", 1.1),       // +10% slower: within threshold
		timeRow("fig7a", "2", "TQ(Z)", 1.5),       // +50% slower: regression
		qpsRow("thrpt", "4", "ServiceValues", 95), // -5%: fine
		qpsRow("thrpt", "8", "ServiceValues", 60), // -40% throughput: regression
		infoRow("fig10b", "1", "G-TQ(Z)", 100),    // informational: never gates
	)
	rows, regressions := DiffDocs(old, niu, 0.25)
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2", regressions)
	}
	byKey := map[string]DiffRow{}
	for _, d := range rows {
		byKey[d.Experiment+"/"+d.X+"/"+d.Method] = d
	}
	if !byKey["fig7a/2/TQ(Z)"].Regressed {
		t.Error("50% slowdown on a seconds series not flagged")
	}
	if byKey["fig7a/1/TQ(Z)"].Regressed {
		t.Error("10% slowdown flagged at a 25% threshold")
	}
	if !byKey["thrpt/8/ServiceValues"].Regressed {
		t.Error("40% throughput drop not flagged")
	}
	if byKey["thrpt/4/ServiceValues"].Regressed {
		t.Error("5% throughput drop flagged at a 25% threshold")
	}
	if d := byKey["fig10b/1/G-TQ(Z)"]; d.Regressed || d.Direction != Informational {
		t.Error("informational series participated in the gate")
	}
}

func TestDiffDocsMixedUnitSeries(t *testing.T) {
	mixed := func(y float64) Row {
		return Row{Experiment: "shards", X: "4", Method: "build(s)",
			YLabel: "queries/sec (build series: seconds)", Y: y}
	}
	// A build-time series in a throughput-labelled table: getting FASTER
	// (smaller seconds) must not be flagged, getting slower must.
	if _, reg := DiffDocs(diffDoc(mixed(2.0)), diffDoc(mixed(1.0)), 0.25); reg != 0 {
		t.Fatal("faster build(s) flagged as regression")
	}
	if _, reg := DiffDocs(diffDoc(mixed(1.0)), diffDoc(mixed(2.0)), 0.25); reg != 1 {
		t.Fatal("slower build(s) not flagged")
	}
}

func TestDiffDocsCountSeriesInformational(t *testing.T) {
	// An "(n)" count series inside a seconds-labelled table (the churn
	// experiment's swap counter) is printed but never gates, however
	// much it moves.
	swaps := func(y float64) Row {
		return Row{Experiment: "churn", X: "0.50", Method: "swaps(n)",
			YLabel: "seconds per query (swaps(n): completed background swaps)", Y: y}
	}
	rows, reg := DiffDocs(diffDoc(swaps(1)), diffDoc(swaps(9)), 0.25)
	if reg != 0 {
		t.Fatal("swaps(n) count change gated")
	}
	if len(rows) != 1 || rows[0].Direction != Informational {
		t.Fatalf("swaps(n) direction = %+v, want Informational", rows)
	}
}

func TestDiffDocsHandlesMissingRows(t *testing.T) {
	old := diffDoc(timeRow("fig7a", "1", "TQ(Z)", 1.0), timeRow("gone", "1", "BL", 2.0))
	niu := diffDoc(timeRow("fig7a", "1", "TQ(Z)", 1.0), timeRow("fresh", "1", "TQ(Z)", 9.0))
	rows, regressions := DiffDocs(old, niu, 0.1)
	if regressions != 0 {
		t.Fatalf("regressions = %d, want 0 (one-sided rows never gate)", regressions)
	}
	var onlyOld, onlyNew int
	for _, d := range rows {
		if d.OnlyOld {
			onlyOld++
		}
		if d.OnlyNew {
			onlyNew++
		}
	}
	if onlyOld != 1 || onlyNew != 1 {
		t.Fatalf("onlyOld=%d onlyNew=%d, want 1 and 1", onlyOld, onlyNew)
	}
}

func TestDiffDocsSubMillisecondFloor(t *testing.T) {
	// A 3× slowdown on a 20µs operation (50k qps) is runner noise, not
	// signal: below the per-op floor the row must print but never gate.
	if _, reg := DiffDocs(diffDoc(qpsRow("thrpt", "1", "SV", 50000)), diffDoc(qpsRow("thrpt", "1", "SV", 15000)), 0.25); reg != 0 {
		t.Fatal("sub-millisecond throughput row gated")
	}
	if _, reg := DiffDocs(diffDoc(timeRow("fig7a", "1", "TQ(Z)", 0.0002)), diffDoc(timeRow("fig7a", "1", "TQ(Z)", 0.001)), 0.25); reg != 0 {
		t.Fatal("sub-millisecond timing row gated")
	}
	// At or above the floor the same relative change still gates.
	if _, reg := DiffDocs(diffDoc(timeRow("fig7a", "1", "TQ(Z)", 0.002)), diffDoc(timeRow("fig7a", "1", "TQ(Z)", 0.01)), 0.25); reg != 1 {
		t.Fatal("millisecond-scale timing regression not gated")
	}
}

func TestDiffDocsZeroBaseline(t *testing.T) {
	old := diffDoc(timeRow("fig7a", "1", "TQ(Z)", 0))
	niu := diffDoc(timeRow("fig7a", "1", "TQ(Z)", 5))
	if _, regressions := DiffDocs(old, niu, 0.1); regressions != 0 {
		t.Fatal("zero baseline must not gate (relative delta undefined)")
	}
}

func TestReadRunDocAndPrint(t *testing.T) {
	doc := RunDoc{Config: Config{Scale: 0.01}, Rows: []Row{timeRow("fig7a", "1", "TQ(Z)", 1.25)}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, doc.Config, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunDoc(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadRunDoc on WriteJSON output: %v", err)
	}
	if _, err := ReadRunDoc(strings.NewReader("{not json")); err == nil {
		t.Fatal("ReadRunDoc accepted malformed JSON")
	}
	rows, _ := DiffDocs(doc, doc, 0.2)
	var out bytes.Buffer
	PrintDiff(&out, rows, 0.2)
	if !strings.Contains(out.String(), "fig7a") {
		t.Fatalf("PrintDiff output missing experiment id:\n%s", out.String())
	}
}
