package bench

import (
	"fmt"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/maxcov"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Default experiment parameters (the bold values of the paper's
// Table III): NYT 1-day users, S=32 stops, N=128 facilities, k=8.
const (
	defaultStops      = 32
	defaultFacilities = 128
	defaultK          = 8
)

// Axis values from Table III.
var (
	userDayAxis  = []string{"0.5", "1", "2", "3"}
	userDaySizes = []int{datagen.NYTHalfDay, datagen.NYT1Day, datagen.NYT2Days, datagen.NYT3Days}
	stopsAxis    = []int{8, 16, 32, 64, 128, 256, 512}
	facilityAxis = []int{16, 32, 64, 128, 256, 512}
	kAxis        = []int{4, 8, 16, 32}
	fig11FacAxis = []int{16, 32, 64}
)

// Registry returns every reproducible experiment, in paper order,
// followed by any process-local extras (see RegisterExtra).
func Registry() []Experiment {
	reg := []Experiment{
		{ID: "datasets", Title: "Tables I & II — dataset inventory (scaled)", Run: expDatasets},
		{ID: "fig6a", Title: "Fig 6a — service value time vs #user trajectories (NYT)", Run: expFig6a},
		{ID: "fig6b", Title: "Fig 6b — service value time vs #stops (NYT)", Run: expFig6b},
		{ID: "fig7a", Title: "Fig 7a — kMaxRRST time vs #user trajectories (NYT)", Run: expFig7a},
		{ID: "fig7b", Title: "Fig 7b — kMaxRRST time vs k (NYT)", Run: expFig7b},
		{ID: "fig7c", Title: "Fig 7c — kMaxRRST time vs #stops (NYT)", Run: expFig7c},
		{ID: "fig7d", Title: "Fig 7d — kMaxRRST time vs #facilities (NYT)", Run: expFig7d},
		{ID: "fig8a", Title: "Fig 8a — multipoint kMaxRRST time vs #stops (NYF, S-/F-TQ)", Run: expFig8a},
		{ID: "fig8b", Title: "Fig 8b — multipoint kMaxRRST time vs #facilities (NYF, S-/F-TQ)", Run: expFig8b},
		{ID: "fig9a", Title: "Fig 9a — segmented kMaxRRST time vs #stops (BJG)", Run: expFig9a},
		{ID: "fig9b", Title: "Fig 9b — segmented kMaxRRST time vs #facilities (BJG)", Run: expFig9b},
		{ID: "fig10a", Title: "Fig 10a — MaxkCovRST time vs #user trajectories (NYT)", Run: expFig10a},
		{ID: "fig10b", Title: "Fig 10b — MaxkCovRST users served vs #user trajectories (NYT)", Run: expFig10b},
		{ID: "fig10c", Title: "Fig 10c — MaxkCovRST time vs #facilities (NYT)", Run: expFig10c},
		{ID: "fig10d", Title: "Fig 10d — MaxkCovRST users served vs #facilities (NYT)", Run: expFig10d},
		{ID: "fig11a", Title: "Fig 11a — approximation ratio vs #user trajectories (NYT)", Run: expFig11a},
		{ID: "fig11b", Title: "Fig 11b — approximation ratio vs #facilities (NYT)", Run: expFig11b},
		{ID: "psi", Title: "§VI.B.1(iii) — kMaxRRST time vs distance threshold ψ (NYT; omitted 'for brevity' in the paper)", Run: expPsi},
		{ID: "build", Title: "§VI.B.4 — index construction time vs #user trajectories (NYT)", Run: expBuild},
		{ID: "scaling", Title: "extra — BL/TQ(Z) gap growth with dataset scale (not in the paper)", Run: expScaling},
		{ID: "thrpt", Title: "extra — batch kMaxRRST throughput vs worker count (NYT, not in the paper)", Run: expThroughput},
		{ID: "pbuild", Title: "extra — TQ(Z) construction time vs build parallelism (NYT, not in the paper)", Run: expParallelBuild},
		{ID: "shards", Title: "extra — sharded scatter-gather build time and throughput vs shard count (NYT, not in the paper)", Run: expShards},
		{ID: "frozen", Title: "extra — frozen columnar vs pointer TQ(Z) read path (NYT, not in the paper)", Run: expFrozen},
		{ID: "churn", Title: "extra — query latency under live insert/delete churn with background epoch swaps (NYT, not in the paper)", Run: expChurn},
	}
	return append(reg, extra...)
}

// shardAxis sweeps the number of TQ-tree shards.
var shardAxis = []int{1, 2, 4, 8}

// expFrozen measures the frozen columnar read path against the pointer
// tree it was frozen from: single-threaded ServiceValues batch rate and
// serial TopK rate over the default NYT configuration. Both run the same
// search (byte-identical answers); the frozen series isolates what the
// flat SoA layout buys the hot loops.
func expFrozen(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "frozen", Title: "frozen columnar vs pointer TQ(Z) read path (NYT)",
		XLabel: "operation", YLabel: "ops/sec single-threaded (freeze series: seconds)",
		Series: []Series{{Method: "pointer"}, {Method: "frozen"}},
	}
	eng := ctx.Engine(dsNYT, datagen.NYT1Day, tqtree.TwoPoint, tqtree.ZOrder)
	fz, err := tqtree.Freeze(eng.Tree())
	if err != nil {
		return nil, err
	}
	feng := query.NewFrozenEngine(fz, eng.Users())
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	p := ctx.Params(service.Binary)

	var qerr error
	measure := func(fn func() error) float64 {
		sec := ctx.Time(func() {
			if err := fn(); err != nil {
				qerr = err
			}
		})
		return sec
	}
	rate := func(ops int, sec float64) float64 {
		if sec <= 0 {
			return 0
		}
		return float64(ops) / sec
	}

	svPtr := measure(func() error { _, _, err := eng.ServiceValues(fs, p, 1); return err })
	svFz := measure(func() error { _, _, err := feng.ServiceValues(fs, p, 1); return err })
	t.XTicks = append(t.XTicks, "ServiceValues")
	appendRow(t, rate(len(fs), svPtr), rate(len(fs), svFz))

	tkPtr := measure(func() error { _, _, err := eng.TopK(fs, defaultK, p); return err })
	tkFz := measure(func() error { _, _, err := feng.TopK(fs, defaultK, p); return err })
	t.XTicks = append(t.XTicks, "TopK")
	appendRow(t, rate(1, tkPtr), rate(1, tkFz))
	if qerr != nil {
		return nil, qerr
	}

	// The freeze step itself, so the trajectory records what entering the
	// frozen regime costs relative to a build (pointer series: Build).
	buildSec := ctx.Time(func() {
		if _, err := tqtree.Build(eng.Users().All, tqtree.Options{
			Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder,
		}); err != nil {
			panic(err)
		}
	})
	freezeSec := ctx.Time(func() {
		if _, err := tqtree.Freeze(eng.Tree()); err != nil {
			panic(err)
		}
	})
	t.XTicks = append(t.XTicks, "build/freeze(s)")
	appendRow(t, buildSec, freezeSec)
	return t, nil
}

// expShards measures the sharded serving path: index build time,
// ServiceValues batch throughput, and scatter-gather kMaxRRST (TopK)
// throughput as the shard count grows. The build series is in seconds;
// the query series are queries/sec. On one core the query series should
// stay roughly flat (scatter-gather adds only heap overhead); on n cores
// builds parallelize across shards and per-shard batches share the
// worker pool.
func expShards(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "shards", Title: "sharded scatter-gather vs shard count (NYT)",
		XLabel: "shards", YLabel: "queries/sec (build series: seconds)",
		Series: []Series{{Method: "build(s)"}, {Method: "ServiceValues"}, {Method: "TopKPar"}},
	}
	users := ctx.Users(dsNYT, datagen.NYT1Day)
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	p := ctx.Params(service.Binary)
	for _, n := range shardAxis {
		opts := shard.Options{Shards: n, Tree: tqtree.Options{
			Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder,
		}}
		var s *shard.Sharded
		var berr error
		buildSec := ctx.Time(func() {
			s, berr = shard.Build(users.All, opts)
		})
		if berr != nil {
			return nil, berr
		}
		var qerr error
		svSec := ctx.Time(func() {
			if _, _, e := s.ServiceValues(fs, p, 0); e != nil {
				qerr = e
			}
		})
		tkSec := ctx.Time(func() {
			if _, _, e := s.TopKParallel(fs, defaultK, p, 0); e != nil {
				qerr = e
			}
		})
		if qerr != nil {
			return nil, qerr
		}
		svQPS, tkQPS := 0.0, 0.0
		if svSec > 0 {
			svQPS = float64(len(fs)) / svSec
		}
		if tkSec > 0 {
			tkQPS = 1 / tkSec
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		appendRow(t, buildSec, svQPS, tkQPS)
	}
	return t, nil
}

// workerAxis sweeps the batch executor's pool size.
var workerAxis = []int{1, 2, 4, 8}

// expThroughput measures the concurrent batch executor: queries/sec for
// per-facility service values (ServiceValues) and full kMaxRRST answers
// (TopKParallel) as the worker count grows. On a single-core host the
// series should stay flat; on n cores ServiceValues should approach n×
// the single-worker rate because facilities shard independently over a
// read-only tree.
func expThroughput(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "thrpt", Title: "batch throughput vs workers (NYT)",
		XLabel: "workers", YLabel: "queries/sec",
		Series: []Series{{Method: "ServiceValues"}, {Method: "TopKPar"}},
	}
	eng := ctx.Engine(dsNYT, datagen.NYT1Day, tqtree.TwoPoint, tqtree.ZOrder)
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	p := ctx.Params(service.Binary)
	for _, w := range workerAxis {
		var qerr error
		svSec := ctx.Time(func() {
			if _, _, e := eng.ServiceValues(fs, p, w); e != nil {
				qerr = e
			}
		})
		tkSec := ctx.Time(func() {
			if _, _, e := eng.TopKParallel(fs, defaultK, p, w); e != nil {
				qerr = e
			}
		})
		if qerr != nil {
			return nil, qerr
		}
		svQPS, tkQPS := 0.0, 0.0
		if svSec > 0 {
			svQPS = float64(len(fs)) / svSec
		}
		if tkSec > 0 {
			tkQPS = 1 / tkSec
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(w))
		appendRow(t, svQPS, tkQPS)
	}
	return t, nil
}

// expParallelBuild measures TQ(Z) construction with Options.Parallelism
// swept over the worker axis — the companion series to the paper's §VI.B.4
// build-time experiment, demonstrating that index construction scales
// with cores while producing an identical tree.
func expParallelBuild(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "pbuild", Title: "TQ(Z) build time vs parallelism (NYT)",
		XLabel: "parallelism", YLabel: "seconds to build",
		Series: []Series{{Method: "TQ(Z)"}},
	}
	users := ctx.Users(dsNYT, datagen.NYT1Day)
	for _, w := range workerAxis {
		sec := ctx.Time(func() {
			if _, err := tqtree.Build(users.All, tqtree.Options{
				Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Parallelism: w,
			}); err != nil {
				panic(err)
			}
		})
		t.XTicks = append(t.XTicks, fmt.Sprint(w))
		appendRow(t, sec)
	}
	return t, nil
}

// expScaling quantifies how the BL-versus-TQ(Z) gap widens with dataset
// size — the trend behind the paper's orders-of-magnitude headline. The
// x-axis is the fraction of the full NYT-3days cardinality, independent
// of the run's own -scale flag.
func expScaling(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "scaling", Title: "kMaxRRST BL vs TQ(Z) across dataset scales",
		XLabel: "fraction of NYT-3days", YLabel: "seconds per query",
		Series: []Series{{Method: "BL"}, {Method: "TQ(Z)"}, {Method: "BL/TQ(Z)"}},
	}
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	p := ctx.Params(service.Binary)
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.2} {
		n := int(frac * float64(datagen.NYT3Days))
		users := trajectory.MustNewSet(datagen.TaxiTrips(datagen.NewYork(), n, ctx.Cfg.Seed+77))
		bl := query.NewBaseline(users, tqtree.TwoPoint)
		tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder})
		if err != nil {
			return nil, err
		}
		eng := query.NewEngine(tree, users)
		var qerr error
		blSec := ctx.Time(func() {
			if _, e := bl.TopK(fs, defaultK, p); e != nil {
				qerr = e
			}
		})
		tqSec := ctx.Time(func() {
			if _, _, e := eng.TopK(fs, defaultK, p); e != nil {
				qerr = e
			}
		})
		if qerr != nil {
			return nil, qerr
		}
		ratio := 0.0
		if tqSec > 0 {
			ratio = blSec / tqSec
		}
		t.XTicks = append(t.XTicks, fmt.Sprintf("%.2f", frac))
		appendRow(t, blSec, tqSec, ratio)
	}
	return t, nil
}

// psiAxis sweeps the serving threshold from half a block to a long walk.
var psiAxis = []float64{75, 150, 300, 600, 1200}

// expPsi fills in the ψ-sensitivity experiment the paper describes but
// omits: runtime of the three kMaxRRST methods as ψ grows. The paper
// reports "no significant change other than the baseline"; the series
// lets readers verify the claim.
func expPsi(ctx *Context) (*Table, error) {
	t := topKTable("psi", "kMaxRRST time vs psi (NYT)", "psi(m)")
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	bl := ctx.Baseline(dsNYT, datagen.NYT1Day, tqtree.TwoPoint)
	engB := ctx.Engine(dsNYT, datagen.NYT1Day, tqtree.TwoPoint, tqtree.Basic)
	engZ := ctx.Engine(dsNYT, datagen.NYT1Day, tqtree.TwoPoint, tqtree.ZOrder)
	for _, psi := range psiAxis {
		p := query.Params{Scenario: service.Binary, Psi: psi}
		var err error
		blSec := ctx.Time(func() {
			if _, e := bl.TopK(fs, defaultK, p); e != nil {
				err = e
			}
		})
		tqbSec := ctx.Time(func() {
			if _, _, e := engB.TopK(fs, defaultK, p); e != nil {
				err = e
			}
		})
		tqzSec := ctx.Time(func() {
			if _, _, e := engZ.TopK(fs, defaultK, p); e != nil {
				err = e
			}
		})
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprintf("%.0f", psi))
		appendRow(t, blSec, tqbSec, tqzSec)
	}
	return t, nil
}

func expDatasets(ctx *Context) (*Table, error) {
	rows := []struct {
		name   string
		kind   string
		paperN int
	}{
		{"NYT (taxi trips)", dsNYT, datagen.NYT3Days},
		{"NYF (check-ins)", dsNYF, datagen.NYFTrajectories},
		{"BJG (GPS traces)", dsBJG, datagen.BJGTrajectories},
	}
	t := &Table{
		ID: "datasets", Title: "dataset inventory (scaled stand-ins)",
		XLabel: "dataset", YLabel: "count",
		Series: []Series{{Method: "trajectories"}, {Method: "points"}},
	}
	for _, r := range rows {
		set := ctx.Users(r.kind, r.paperN)
		t.XTicks = append(t.XTicks, r.name)
		t.Series[0].Y = append(t.Series[0].Y, float64(set.Len()))
		t.Series[1].Y = append(t.Series[1].Y, float64(set.TotalPoints()))
	}
	return t, nil
}

// timeServiceValue measures the average per-facility service-value time.
func timeServiceValue(ctx *Context, eng *query.Engine, bl *query.Baseline, fs []*trajectory.Facility, p query.Params) (blSec, tqSec float64, err error) {
	probe := fs
	if len(probe) > 16 {
		probe = probe[:16]
	}
	if bl != nil {
		blSec = ctx.Time(func() {
			for _, f := range probe {
				if _, e := bl.ServiceValue(f, p); e != nil {
					err = e
					return
				}
			}
		}) / float64(len(probe))
	}
	if eng != nil {
		tqSec = ctx.Time(func() {
			for _, f := range probe {
				if _, _, e := eng.ServiceValue(f, p); e != nil {
					err = e
					return
				}
			}
		}) / float64(len(probe))
	}
	return blSec, tqSec, err
}

func expFig6a(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "fig6a", Title: "service value time vs #users (NYT)",
		XLabel: "users(days)", YLabel: "seconds per facility",
		Series: []Series{{Method: "BL"}, {Method: "TQ(B)"}, {Method: "TQ(Z)"}},
	}
	p := ctx.Params(service.Binary)
	for i, days := range userDayAxis {
		fs := ctx.Routes("ny", defaultFacilities, defaultStops)
		bl := ctx.Baseline(dsNYT, userDaySizes[i], tqtree.TwoPoint)
		engB := ctx.Engine(dsNYT, userDaySizes[i], tqtree.TwoPoint, tqtree.Basic)
		engZ := ctx.Engine(dsNYT, userDaySizes[i], tqtree.TwoPoint, tqtree.ZOrder)
		blSec, tqbSec, err := timeServiceValue(ctx, engB, bl, fs, p)
		if err != nil {
			return nil, err
		}
		_, tqzSec, err := timeServiceValue(ctx, engZ, nil, fs, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, days)
		t.Series[0].Y = append(t.Series[0].Y, blSec)
		t.Series[1].Y = append(t.Series[1].Y, tqbSec)
		t.Series[2].Y = append(t.Series[2].Y, tqzSec)
	}
	return t, nil
}

func expFig6b(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "fig6b", Title: "service value time vs #stops (NYT)",
		XLabel: "stops", YLabel: "seconds per facility",
		Series: []Series{{Method: "BL"}, {Method: "TQ(B)"}, {Method: "TQ(Z)"}},
	}
	p := ctx.Params(service.Binary)
	bl := ctx.Baseline(dsNYT, datagen.NYT1Day, tqtree.TwoPoint)
	engB := ctx.Engine(dsNYT, datagen.NYT1Day, tqtree.TwoPoint, tqtree.Basic)
	engZ := ctx.Engine(dsNYT, datagen.NYT1Day, tqtree.TwoPoint, tqtree.ZOrder)
	for _, stops := range stopsAxis {
		fs := ctx.Routes("ny", defaultFacilities, stops)
		blSec, tqbSec, err := timeServiceValue(ctx, engB, bl, fs, p)
		if err != nil {
			return nil, err
		}
		_, tqzSec, err := timeServiceValue(ctx, engZ, nil, fs, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(stops))
		t.Series[0].Y = append(t.Series[0].Y, blSec)
		t.Series[1].Y = append(t.Series[1].Y, tqbSec)
		t.Series[2].Y = append(t.Series[2].Y, tqzSec)
	}
	return t, nil
}

// timeTopK measures one kMaxRRST query for the three standard methods.
func timeTopK(ctx *Context, kind string, paperN int, variant tqtree.Variant, fs []*trajectory.Facility, k int, p query.Params) (blSec, tqbSec, tqzSec float64, err error) {
	bl := ctx.Baseline(kind, paperN, variant)
	engB := ctx.Engine(kind, paperN, variant, tqtree.Basic)
	engZ := ctx.Engine(kind, paperN, variant, tqtree.ZOrder)
	blSec = ctx.Time(func() {
		if _, e := bl.TopK(fs, k, p); e != nil {
			err = e
		}
	})
	if err != nil {
		return
	}
	tqbSec = ctx.Time(func() {
		if _, _, e := engB.TopK(fs, k, p); e != nil {
			err = e
		}
	})
	if err != nil {
		return
	}
	tqzSec = ctx.Time(func() {
		if _, _, e := engZ.TopK(fs, k, p); e != nil {
			err = e
		}
	})
	return
}

func topKTable(id, title, xlabel string) *Table {
	return &Table{
		ID: id, Title: title, XLabel: xlabel, YLabel: "seconds per query",
		Series: []Series{{Method: "BL"}, {Method: "TQ(B)"}, {Method: "TQ(Z)"}},
	}
}

func expFig7a(ctx *Context) (*Table, error) {
	t := topKTable("fig7a", "kMaxRRST time vs #users (NYT)", "users(days)")
	p := ctx.Params(service.Binary)
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	for i, days := range userDayAxis {
		bl, tqb, tqz, err := timeTopK(ctx, dsNYT, userDaySizes[i], tqtree.TwoPoint, fs, defaultK, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, days)
		appendRow(t, bl, tqb, tqz)
	}
	return t, nil
}

func expFig7b(ctx *Context) (*Table, error) {
	t := topKTable("fig7b", "kMaxRRST time vs k (NYT)", "k")
	p := ctx.Params(service.Binary)
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	for _, k := range kAxis {
		bl, tqb, tqz, err := timeTopK(ctx, dsNYT, datagen.NYT1Day, tqtree.TwoPoint, fs, k, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(k))
		appendRow(t, bl, tqb, tqz)
	}
	return t, nil
}

func expFig7c(ctx *Context) (*Table, error) {
	t := topKTable("fig7c", "kMaxRRST time vs #stops (NYT)", "stops")
	p := ctx.Params(service.Binary)
	for _, stops := range stopsAxis {
		fs := ctx.Routes("ny", defaultFacilities, stops)
		bl, tqb, tqz, err := timeTopK(ctx, dsNYT, datagen.NYT1Day, tqtree.TwoPoint, fs, defaultK, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(stops))
		appendRow(t, bl, tqb, tqz)
	}
	return t, nil
}

func expFig7d(ctx *Context) (*Table, error) {
	t := topKTable("fig7d", "kMaxRRST time vs #facilities (NYT)", "facilities")
	p := ctx.Params(service.Binary)
	for _, n := range facilityAxis {
		fs := ctx.Routes("ny", n, defaultStops)
		bl, tqb, tqz, err := timeTopK(ctx, dsNYT, datagen.NYT1Day, tqtree.TwoPoint, fs, defaultK, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		appendRow(t, bl, tqb, tqz)
	}
	return t, nil
}

func appendRow(t *Table, ys ...float64) {
	for i, y := range ys {
		t.Series[i].Y = append(t.Series[i].Y, y)
	}
}

// multipointRow measures the six NYF methods of Fig 8: S-BL, S-TQ(B),
// S-TQ(Z) (segmented) and F-BL, F-TQ(B), F-TQ(Z) (full-trajectory).
// PointCount is the multipoint service scenario.
func multipointRow(ctx *Context, fs []*trajectory.Facility, k int) ([]float64, error) {
	p := ctx.Params(service.PointCount)
	var out []float64
	for _, variant := range []tqtree.Variant{tqtree.Segmented, tqtree.FullTrajectory} {
		bl, tqb, tqz, err := timeTopK(ctx, dsNYF, datagen.NYFTrajectories, variant, fs, k, p)
		if err != nil {
			return nil, err
		}
		out = append(out, bl, tqb, tqz)
	}
	return out, nil
}

func multipointTable(id, title, xlabel string) *Table {
	return &Table{
		ID: id, Title: title, XLabel: xlabel, YLabel: "seconds per query",
		Series: []Series{
			{Method: "S-BL"}, {Method: "S-TQ(B)"}, {Method: "S-TQ(Z)"},
			{Method: "F-BL"}, {Method: "F-TQ(B)"}, {Method: "F-TQ(Z)"},
		},
	}
}

func expFig8a(ctx *Context) (*Table, error) {
	t := multipointTable("fig8a", "multipoint kMaxRRST time vs #stops (NYF)", "stops")
	for _, stops := range stopsAxis {
		fs := ctx.Routes("ny", defaultFacilities, stops)
		row, err := multipointRow(ctx, fs, defaultK)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(stops))
		appendRow(t, row...)
	}
	return t, nil
}

func expFig8b(ctx *Context) (*Table, error) {
	t := multipointTable("fig8b", "multipoint kMaxRRST time vs #facilities (NYF)", "facilities")
	for _, n := range facilityAxis {
		fs := ctx.Routes("ny", n, defaultStops)
		row, err := multipointRow(ctx, fs, defaultK)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		appendRow(t, row...)
	}
	return t, nil
}

func expFig9a(ctx *Context) (*Table, error) {
	t := topKTable("fig9a", "segmented kMaxRRST time vs #stops (BJG)", "stops")
	p := ctx.Params(service.PointCount)
	for _, stops := range stopsAxis {
		fs := ctx.Routes("bj", defaultFacilities, stops)
		bl, tqb, tqz, err := timeTopK(ctx, dsBJG, datagen.BJGTrajectories, tqtree.Segmented, fs, defaultK, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(stops))
		appendRow(t, bl, tqb, tqz)
	}
	return t, nil
}

func expFig9b(ctx *Context) (*Table, error) {
	t := topKTable("fig9b", "segmented kMaxRRST time vs #facilities (BJG)", "facilities")
	p := ctx.Params(service.PointCount)
	for _, n := range facilityAxis {
		fs := ctx.Routes("bj", n, defaultStops)
		bl, tqb, tqz, err := timeTopK(ctx, dsBJG, datagen.BJGTrajectories, tqtree.Segmented, fs, defaultK, p)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		appendRow(t, bl, tqb, tqz)
	}
	return t, nil
}

// maxCovMethods runs the four MaxkCovRST methods and returns per-method
// (seconds, users served).
func maxCovMethods(ctx *Context, paperN int, fs []*trajectory.Facility, k int) (secs, served []float64, err error) {
	p := ctx.Params(service.Binary)
	bl := ctx.Baseline(dsNYT, paperN, tqtree.TwoPoint)
	engB := ctx.Engine(dsNYT, paperN, tqtree.TwoPoint, tqtree.Basic)
	engZ := ctx.Engine(dsNYT, paperN, tqtree.TwoPoint, tqtree.ZOrder)

	var res maxcov.Result
	run := func(fn func() (maxcov.Result, error)) float64 {
		return ctx.Time(func() {
			var e error
			res, e = fn()
			if e != nil {
				err = e
			}
		})
	}
	// G(BL): straightforward greedy over baseline coverage.
	sec := run(func() (maxcov.Result, error) {
		return maxcov.Greedy(maxcov.BaselineSource{Baseline: bl}, fs, k, p)
	})
	secs = append(secs, sec)
	served = append(served, float64(res.UsersServed))
	// G-TQ(B): two-step greedy over TQ-tree basic.
	sec = run(func() (maxcov.Result, error) {
		return maxcov.TwoStepGreedy(engB, fs, k, 0, p)
	})
	secs = append(secs, sec)
	served = append(served, float64(res.UsersServed))
	// G-TQ(Z): two-step greedy over TQ-tree z-order.
	sec = run(func() (maxcov.Result, error) {
		return maxcov.TwoStepGreedy(engZ, fs, k, 0, p)
	})
	secs = append(secs, sec)
	served = append(served, float64(res.UsersServed))
	// Gn-TQ(Z): genetic over TQ-tree z-order coverage.
	sec = run(func() (maxcov.Result, error) {
		return maxcov.Genetic(maxcov.EngineSource{Engine: engZ}, fs, k, p,
			maxcov.GeneticOptions{Seed: ctx.Cfg.Seed})
	})
	secs = append(secs, sec)
	served = append(served, float64(res.UsersServed))
	return secs, served, err
}

func maxCovTable(id, title, xlabel, ylabel string) *Table {
	return &Table{
		ID: id, Title: title, XLabel: xlabel, YLabel: ylabel,
		Series: []Series{
			{Method: "G(BL)"}, {Method: "G-TQ(B)"}, {Method: "G-TQ(Z)"}, {Method: "Gn-TQ(Z)"},
		},
	}
}

func expFig10a(ctx *Context) (*Table, error) {
	t := maxCovTable("fig10a", "MaxkCovRST time vs #users (NYT)", "users(days)", "seconds per query")
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	for i, days := range userDayAxis {
		secs, _, err := maxCovMethods(ctx, userDaySizes[i], fs, defaultK)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, days)
		appendRow(t, secs...)
	}
	return t, nil
}

func expFig10b(ctx *Context) (*Table, error) {
	t := maxCovTable("fig10b", "MaxkCovRST users served vs #users (NYT)", "users(days)", "# users served")
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	for i, days := range userDayAxis {
		_, served, err := maxCovMethods(ctx, userDaySizes[i], fs, defaultK)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, days)
		appendRow(t, served...)
	}
	return t, nil
}

func expFig10c(ctx *Context) (*Table, error) {
	t := maxCovTable("fig10c", "MaxkCovRST time vs #facilities (NYT)", "facilities", "seconds per query")
	for _, n := range facilityAxis {
		fs := ctx.Routes("ny", n, defaultStops)
		secs, _, err := maxCovMethods(ctx, datagen.NYT1Day, fs, defaultK)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		appendRow(t, secs...)
	}
	return t, nil
}

func expFig10d(ctx *Context) (*Table, error) {
	t := maxCovTable("fig10d", "MaxkCovRST users served vs #facilities (NYT)", "facilities", "# users served")
	for _, n := range facilityAxis {
		fs := ctx.Routes("ny", n, defaultStops)
		_, served, err := maxCovMethods(ctx, datagen.NYT1Day, fs, defaultK)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		appendRow(t, served...)
	}
	return t, nil
}

// fig11K is the subset size used for the approximation-ratio experiments:
// exact enumeration of C(64, 8) is infeasible, so the harness uses k=4
// (documented in EXPERIMENTS.md).
const fig11K = 4

func approxRatios(ctx *Context, paperN int, fs []*trajectory.Facility) (greedy, genetic float64, err error) {
	p := ctx.Params(service.Binary)
	engZ := ctx.Engine(dsNYT, paperN, tqtree.TwoPoint, tqtree.ZOrder)
	src := maxcov.EngineSource{Engine: engZ}
	exact, err := maxcov.Exact(src, fs, fig11K, p)
	if err != nil {
		return 0, 0, err
	}
	if exact.Value == 0 {
		return 1, 1, nil
	}
	g, err := maxcov.TwoStepGreedy(engZ, fs, fig11K, 0, p)
	if err != nil {
		return 0, 0, err
	}
	gn, err := maxcov.Genetic(src, fs, fig11K, p, maxcov.GeneticOptions{Seed: ctx.Cfg.Seed})
	if err != nil {
		return 0, 0, err
	}
	return g.Value / exact.Value, gn.Value / exact.Value, nil
}

func expFig11a(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "fig11a", Title: "approximation ratio vs #users (NYT)",
		XLabel: "users(days)", YLabel: "approximation ratio (vs exact)",
		Series: []Series{{Method: "G-TQ(Z)"}, {Method: "Gn-TQ(Z)"}},
	}
	fs := ctx.Routes("ny", 16, defaultStops)
	for i, days := range userDayAxis {
		g, gn, err := approxRatios(ctx, userDaySizes[i], fs)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, days)
		appendRow(t, g, gn)
	}
	return t, nil
}

func expFig11b(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "fig11b", Title: "approximation ratio vs #facilities (NYT)",
		XLabel: "facilities", YLabel: "approximation ratio (vs exact)",
		Series: []Series{{Method: "G-TQ(Z)"}, {Method: "Gn-TQ(Z)"}},
	}
	for _, n := range fig11FacAxis {
		fs := ctx.Routes("ny", n, defaultStops)
		g, gn, err := approxRatios(ctx, datagen.NYT1Day, fs)
		if err != nil {
			return nil, err
		}
		t.XTicks = append(t.XTicks, fmt.Sprint(n))
		appendRow(t, g, gn)
	}
	return t, nil
}

func expBuild(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "build", Title: "index construction time vs #users (NYT)",
		XLabel: "users(days)", YLabel: "seconds to build",
		Series: []Series{{Method: "TQ(B)"}, {Method: "TQ(Z)"}},
	}
	for i, days := range userDayAxis {
		users := ctx.Users(dsNYT, userDaySizes[i])
		var tb, tz float64
		tb = ctx.Time(func() {
			if _, err := tqtree.Build(users.All, tqtree.Options{
				Variant: tqtree.TwoPoint, Ordering: tqtree.Basic,
			}); err != nil {
				panic(err)
			}
		})
		tz = ctx.Time(func() {
			if _, err := tqtree.Build(users.All, tqtree.Options{
				Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder,
			}); err != nil {
				panic(err)
			}
		})
		t.XTicks = append(t.XTicks, days)
		appendRow(t, tb, tz)
	}
	return t, nil
}
