package bench

import (
	"encoding/json"
	"io"
)

// Row is one (experiment, method, x-tick) measurement in machine-readable
// form — the unit CI and perf-trajectory tooling consume.
type Row struct {
	Experiment string  `json:"experiment"`
	Title      string  `json:"title"`
	XLabel     string  `json:"x_label"`
	YLabel     string  `json:"y_label"`
	X          string  `json:"x"`
	Method     string  `json:"method"`
	Y          float64 `json:"y"`
}

// Rows flattens the table into one Row per (method, x-tick) pair.
func (t *Table) Rows() []Row {
	var rows []Row
	for _, s := range t.Series {
		for i, y := range s.Y {
			x := ""
			if i < len(t.XTicks) {
				x = t.XTicks[i]
			}
			rows = append(rows, Row{
				Experiment: t.ID,
				Title:      t.Title,
				XLabel:     t.XLabel,
				YLabel:     t.YLabel,
				X:          x,
				Method:     s.Method,
				Y:          y,
			})
		}
	}
	return rows
}

// RunDoc is the top-level JSON document WriteJSON emits: the run
// configuration plus every measurement row.
type RunDoc struct {
	Config Config `json:"config"`
	Rows   []Row  `json:"rows"`
}

// WriteJSON writes the tables as an indented RunDoc. The config is
// normalized with defaults so the document records the effective run
// parameters.
func WriteJSON(w io.Writer, cfg Config, tables []*Table) error {
	doc := RunDoc{Config: cfg.withDefaults()}
	for _, t := range tables {
		doc.Rows = append(doc.Rows, t.Rows()...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
