package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tinyConfig keeps smoke tests fast: minimum dataset sizes, one repeat.
func tinyConfig() Config {
	return Config{Scale: 0.0001, Repeats: 1, Seed: 1}
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"datasets",
		"fig6a", "fig6b",
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b",
		"fig9a", "fig9b",
		"fig10a", "fig10b", "fig10c", "fig10d",
		"fig11a", "fig11b",
		"psi",
		"build",
		"scaling",
		"thrpt",
		"pbuild",
		"shards",
		"frozen",
		"churn",
	}
	reg := Registry()
	have := map[string]bool{}
	for _, e := range reg {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing %s", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(reg), len(want))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run([]string{"nope"}, tinyConfig(), &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunReturnsTablesAndJSON(t *testing.T) {
	var buf bytes.Buffer
	tables, err := Run([]string{"datasets"}, tinyConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "datasets" {
		t.Fatalf("unexpected tables %+v", tables)
	}
	var out bytes.Buffer
	if err := WriteJSON(&out, tinyConfig(), tables); err != nil {
		t.Fatal(err)
	}
	var doc RunDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if doc.Config.Repeats != 1 || doc.Config.Scale != 0.0001 {
		t.Errorf("config not recorded: %+v", doc.Config)
	}
	wantRows := 0
	for _, s := range tables[0].Series {
		wantRows += len(s.Y)
	}
	if len(doc.Rows) != wantRows {
		t.Errorf("%d rows, want %d", len(doc.Rows), wantRows)
	}
	for _, r := range doc.Rows {
		if r.Experiment != "datasets" || r.Method == "" || r.X == "" {
			t.Errorf("malformed row %+v", r)
		}
	}
}

func TestThroughputExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment in -short mode")
	}
	ctx := NewContext(tinyConfig())
	for _, tc := range []struct {
		run  func(*Context) (*Table, error)
		axis []int
	}{
		{expThroughput, workerAxis},
		{expParallelBuild, workerAxis},
		{expShards, shardAxis},
	} {
		table, err := tc.run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(table.XTicks) != len(tc.axis) {
			t.Fatalf("%s: %d ticks, want %d", table.ID, len(table.XTicks), len(tc.axis))
		}
		for _, s := range table.Series {
			if len(s.Y) != len(table.XTicks) {
				t.Fatalf("%s series %s ragged", table.ID, s.Method)
			}
			for i, y := range s.Y {
				if y < 0 {
					t.Errorf("%s series %s tick %d negative", table.ID, s.Method, i)
				}
			}
		}
	}
}

func TestDatasetsExperiment(t *testing.T) {
	ctx := NewContext(tinyConfig())
	table, err := expDatasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.XTicks) != 3 || len(table.Series) != 2 {
		t.Fatalf("unexpected shape: %d ticks, %d series", len(table.XTicks), len(table.Series))
	}
	for _, s := range table.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %s tick %d non-positive", s.Method, i)
			}
		}
	}
}

func TestTimingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments in -short mode")
	}
	// One representative experiment per family, at tiny scale.
	ctx := NewContext(tinyConfig())
	for _, id := range []string{"fig6b", "fig7b", "fig10c", "fig11b", "build"} {
		var exp Experiment
		for _, e := range Registry() {
			if e.ID == id {
				exp = e
			}
		}
		table, err := exp.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.XTicks) == 0 || len(table.Series) == 0 {
			t.Fatalf("%s produced empty table", id)
		}
		for _, s := range table.Series {
			if len(s.Y) != len(table.XTicks) {
				t.Fatalf("%s series %s has %d values for %d ticks",
					id, s.Method, len(s.Y), len(table.XTicks))
			}
		}
		var buf bytes.Buffer
		table.Print(&buf)
		out := buf.String()
		if !strings.Contains(out, table.ID) || !strings.Contains(out, table.XLabel) {
			t.Errorf("%s print output missing headers:\n%s", id, out)
		}
	}
}

func TestApproxRatiosWithinBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio experiment in -short mode")
	}
	ctx := NewContext(tinyConfig())
	fs := ctx.Routes("ny", 12, 16)
	g, gn, err := approxRatios(ctx, 500, fs)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]float64{"greedy": g, "genetic": gn} {
		if r < 0 || r > 1+1e-9 {
			t.Errorf("%s ratio %v outside [0,1]", name, r)
		}
	}
}

func TestTablePrintAlignment(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "t", XLabel: "param", YLabel: "seconds per query",
		XTicks: []string{"1", "10"},
		Series: []Series{{Method: "BL", Y: []float64{0.5, 1.25}}, {Method: "TQ", Y: []float64{0.001}}},
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "0.500000") {
		t.Errorf("seconds not formatted: %s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing-value placeholder absent: %s", out)
	}
}

func TestScaledClamps(t *testing.T) {
	ctx := NewContext(Config{Scale: 0.00001, Seed: 1})
	if got := ctx.scaled(1000000); got != 500 {
		t.Errorf("scaled floor = %d, want 500", got)
	}
	ctx2 := NewContext(Config{Scale: 50, Seed: 1})
	if got := ctx2.scaled(1000); got != 1000 {
		t.Errorf("scaled cap = %d, want 1000", got)
	}
}

func TestContextMemoization(t *testing.T) {
	ctx := NewContext(tinyConfig())
	a := ctx.Users(dsNYT, 100000)
	b := ctx.Users(dsNYT, 100000)
	if a != b {
		t.Error("Users not memoized")
	}
	e1 := ctx.Engine(dsNYT, 100000, 0, 1)
	e2 := ctx.Engine(dsNYT, 100000, 0, 1)
	if e1 != e2 {
		t.Error("Engine not memoized")
	}
	r1 := ctx.Routes("ny", 8, 8)
	r2 := ctx.Routes("ny", 8, 8)
	if &r1[0] != &r2[0] {
		t.Error("Routes not memoized")
	}
}
