// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VI) as printed series —
// runtime comparisons for the kMaxRRST and MaxkCovRST methods, quality
// metrics (#users served, approximation ratio), and index construction
// times. cmd/tqbench is its CLI front end; EXPERIMENTS.md records a run.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Config controls an experiment run.
type Config struct {
	// Scale is the fraction of the paper-scale dataset cardinalities to
	// generate (1.0 = full Table II sizes). 0 means 0.02.
	Scale float64 `json:"scale"`
	// Psi is the serving threshold ψ in meters. 0 means
	// datagen.DefaultPsi.
	Psi float64 `json:"psi"`
	// Repeats is the number of timing repetitions (minimum taken).
	// 0 means 3.
	Repeats int `json:"repeats"`
	// Seed drives all data generation.
	Seed int64 `json:"seed"`
	// MaxSeconds soft-bounds a single measured operation: when one
	// repetition exceeds it, no further repetitions run. 0 means 30s.
	MaxSeconds float64 `json:"max_seconds"`
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Psi <= 0 {
		c.Psi = datagen.DefaultPsi
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.MaxSeconds <= 0 {
		c.MaxSeconds = 30
	}
	return c
}

// Series is one method's measurements across the experiment's x-axis.
type Series struct {
	Method string
	Y      []float64
}

// Table is a printed experiment result: x-axis labels and one series per
// method — the same rows/series the paper's figures plot.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
}

// Print renders the table in aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.XLabel)
	for _, s := range t.Series {
		header = append(header, s.Method)
	}
	rows := [][]string{header}
	for i, x := range t.XTicks {
		row := []string{x}
		for _, s := range t.Series {
			if i < len(s.Y) {
				row = append(row, formatY(s.Y[i], t.YLabel))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	fmt.Fprintf(w, "# y-axis: %s\n\n", t.YLabel)
}

func formatY(v float64, ylabel string) string {
	if strings.Contains(ylabel, "seconds") {
		return fmt.Sprintf("%.6f", v)
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx *Context) (*Table, error)
}

// Context carries the run configuration and memoizes datasets and indexes
// shared between experiments.
type Context struct {
	Cfg Config

	ny *datagen.City
	bj *datagen.City

	users   map[string]*trajectory.Set
	trees   map[string]*tqtree.Tree
	engines map[string]*query.Engine
	bases   map[string]*query.Baseline
	routes  map[string][]*trajectory.Facility
}

// NewContext builds a fresh experiment context.
func NewContext(cfg Config) *Context {
	return &Context{
		Cfg:     cfg.withDefaults(),
		ny:      datagen.NewYork(),
		bj:      datagen.Beijing(),
		users:   map[string]*trajectory.Set{},
		trees:   map[string]*tqtree.Tree{},
		engines: map[string]*query.Engine{},
		bases:   map[string]*query.Baseline{},
		routes:  map[string][]*trajectory.Facility{},
	}
}

// scaled converts a paper-scale cardinality to the run scale (minimum 500
// so the indexes stay non-trivial at tiny scales).
func (c *Context) scaled(n int) int {
	s := int(float64(n) * c.Cfg.Scale)
	if s < 500 {
		s = 500
	}
	if s > n {
		s = n
	}
	return s
}

// Dataset kinds.
const (
	dsNYT = "nyt" // taxi trips, two-point
	dsNYF = "nyf" // check-ins, multipoint
	dsBJG = "bjg" // GPS traces, multipoint (long)
)

// Users returns the memoized scaled dataset of a kind and paper-scale
// cardinality.
func (c *Context) Users(kind string, paperN int) *trajectory.Set {
	n := c.scaled(paperN)
	key := fmt.Sprintf("%s/%d", kind, n)
	if s, ok := c.users[key]; ok {
		return s
	}
	var ts []*trajectory.Trajectory
	switch kind {
	case dsNYT:
		ts = datagen.TaxiTrips(c.ny, n, c.Cfg.Seed+1)
	case dsNYF:
		// The paper's 212,751 NYF "trajectories" come from a checkin
		// corpus of similar size, so daily sequences are short (2–3
		// stops); compact trajectories are what lets the F-TQ variant
		// store entries deep.
		ts = datagen.Checkins(c.ny, n, 3, c.Cfg.Seed+2)
	case dsBJG:
		ts = datagen.GPSTraces(c.bj, n, 10, 60, c.Cfg.Seed+3)
	default:
		panic("bench: unknown dataset kind " + kind)
	}
	set := trajectory.MustNewSet(ts)
	c.users[key] = set
	return set
}

// Routes returns memoized facilities for a city with the given count and
// stops per route.
func (c *Context) Routes(city string, n, stops int) []*trajectory.Facility {
	key := fmt.Sprintf("%s/%d/%d", city, n, stops)
	if fs, ok := c.routes[key]; ok {
		return fs
	}
	model := c.ny
	if city == "bj" {
		model = c.bj
	}
	fs := datagen.BusRoutes(model, n, stops, c.Cfg.Seed+4)
	c.routes[key] = fs
	return fs
}

// Engine returns a memoized query engine over the given dataset/variant/
// ordering.
func (c *Context) Engine(kind string, paperN int, v tqtree.Variant, o tqtree.Ordering) *query.Engine {
	users := c.Users(kind, paperN)
	key := fmt.Sprintf("%s/%d/%v/%v", kind, users.Len(), v, o)
	if e, ok := c.engines[key]; ok {
		return e
	}
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: v, Ordering: o})
	if err != nil {
		panic(fmt.Sprintf("bench: build tree: %v", err))
	}
	e := query.NewEngine(tree, users)
	c.engines[key] = e
	return e
}

// Baseline returns a memoized baseline index over the dataset.
func (c *Context) Baseline(kind string, paperN int, v tqtree.Variant) *query.Baseline {
	users := c.Users(kind, paperN)
	key := fmt.Sprintf("%s/%d/%v", kind, users.Len(), v)
	if b, ok := c.bases[key]; ok {
		return b
	}
	b := query.NewBaseline(users, v)
	c.bases[key] = b
	return b
}

// Params returns the query parameters for a scenario at the configured ψ.
func (c *Context) Params(sc service.Scenario) query.Params {
	return query.Params{Scenario: sc, Psi: c.Cfg.Psi}
}

// Time measures fn, returning the minimum of Cfg.Repeats runs in seconds.
// A run longer than Cfg.MaxSeconds stops further repetitions.
func (c *Context) Time(fn func()) float64 {
	best := -1.0
	for i := 0; i < c.Cfg.Repeats; i++ {
		start := time.Now()
		fn()
		sec := time.Since(start).Seconds()
		if best < 0 || sec < best {
			best = sec
		}
		if sec > c.Cfg.MaxSeconds {
			break
		}
	}
	return best
}

// extra holds process-local experiments contributed via RegisterExtra.
var extra []Experiment

// RegisterExtra appends an experiment to the registry for this process.
// cmd/tqbench uses it to contribute experiments that need the public
// trajcover API (the snapshot-restore comparison): internal/bench cannot
// import the root package itself, because the root package's in-package
// tests import internal/bench and would close an import cycle.
func RegisterExtra(e Experiment) { extra = append(extra, e) }

// Run executes the experiments with the given IDs ("all" runs the full
// registry), prints each table to w, and returns the tables so callers
// can post-process them (e.g. the -json trajectory output of cmd/tqbench).
func Run(ids []string, cfg Config, w io.Writer) ([]*Table, error) {
	ctx := NewContext(cfg)
	reg := Registry()
	byID := map[string]Experiment{}
	for _, e := range reg {
		byID[e.ID] = e
	}
	var run []Experiment
	if len(ids) == 1 && ids[0] == "all" {
		run = reg
	} else {
		for _, id := range ids {
			e, ok := byID[id]
			if !ok {
				known := make([]string, 0, len(byID))
				for k := range byID {
					known = append(known, k)
				}
				sort.Strings(known)
				return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(known, ", "))
			}
			run = append(run, e)
		}
	}
	fmt.Fprintf(w, "# trajcover experiment run: scale=%.3f psi=%.0fm repeats=%d seed=%d\n\n",
		ctx.Cfg.Scale, ctx.Cfg.Psi, ctx.Cfg.Repeats, ctx.Cfg.Seed)
	tables := make([]*Table, 0, len(run))
	for _, e := range run {
		table, err := e.Run(ctx)
		if err != nil {
			return tables, fmt.Errorf("bench: experiment %s: %w", e.ID, err)
		}
		table.Print(w)
		tables = append(tables, table)
	}
	return tables, nil
}
