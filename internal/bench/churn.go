package bench

// The churn experiment: query latency under live writes. A live
// epoch-serving index (internal/shard.Live) absorbs an interleaved
// insert/delete/query stream while background rebuilds fold the delta
// overlay and swap frozen bases underneath the queries. The series
// report the query latency distribution (p50/p99) per write fraction —
// the claim under test is that a background swap never stops the world:
// p99 under churn should stay within small multiples of the write-free
// steady state, because readers only ever load an epoch pointer and
// rebuilds happen off the serving path.

import (
	"fmt"
	"sort"
	"time"

	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
	"math/rand"
)

// churnWriteFractions is the experiment's x-axis: the fraction of
// operations that are writes (0 = read-only steady state).
var churnWriteFractions = []float64{0, 0.1, 0.3, 0.5}

// churnQueries is the number of timed queries per row.
const churnQueries = 400

// expChurn interleaves inserts, deletes, and single-facility
// ServiceValue queries over a live index at each write fraction, timing
// every query. Writes go 70% inserts / 30% deletes; the compaction
// policy is tuned so several background rebuild-and-swap cycles land
// inside each churned row (the swaps(n) series records how many).
func expChurn(ctx *Context) (*Table, error) {
	t := &Table{
		ID: "churn", Title: "query latency under live churn (NYT)",
		XLabel: "write fraction", YLabel: "seconds per query (swaps(n): completed background swaps)",
		Series: []Series{{Method: "p50"}, {Method: "p99"}, {Method: "swaps(n)"}},
	}
	users := ctx.Users(dsNYT, datagen.NYT1Day)
	fs := ctx.Routes("ny", defaultFacilities, defaultStops)
	p := ctx.Params(service.Binary)

	baseN := users.Len() * 2 / 3
	base := users.All[:baseN]
	feed := users.All[baseN:]

	for _, frac := range churnWriteFractions {
		// Threshold sized so this row's write volume crosses it several
		// times — each crossing is one background rebuild-and-swap.
		expectedWrites := 0
		if frac > 0 {
			expectedWrites = int(frac / (1 - frac) * churnQueries)
		}
		maxDelta := expectedWrites / 5
		if maxDelta < 12 {
			maxDelta = 12
		}
		lv, err := shard.BuildLive(base, shard.Options{
			Shards:      1,
			Partitioner: shard.Hash{},
			Tree: tqtree.Options{
				Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder,
			},
		}, shard.Policy{MaxDelta: maxDelta, MaxDeltaFraction: -1})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 91))
		liveIDs := make([]trajectory.ID, 0, users.Len())
		for _, u := range base {
			liveIDs = append(liveIDs, u.ID)
		}
		pending := feed
		latencies := make([]float64, 0, churnQueries)
		writeDebt := 0.0
		for len(latencies) < churnQueries {
			// Writes owed per query at this fraction: frac/(1-frac).
			if frac > 0 {
				writeDebt += frac / (1 - frac)
			}
			for ; writeDebt >= 1; writeDebt-- {
				if rng.Float64() < 0.7 && len(pending) > 0 {
					u := pending[0]
					pending = pending[1:]
					if err := lv.Insert(u); err != nil {
						return nil, err
					}
					liveIDs = append(liveIDs, u.ID)
				} else if len(liveIDs) > 0 {
					i := rng.Intn(len(liveIDs))
					if found, err := lv.Delete(liveIDs[i]); err != nil {
						return nil, err
					} else if found {
						liveIDs[i] = liveIDs[len(liveIDs)-1]
						liveIDs = liveIDs[:len(liveIDs)-1]
					}
				}
			}
			f := fs[rng.Intn(len(fs))]
			start := time.Now()
			if _, _, err := lv.ServiceValue(f, p); err != nil {
				return nil, err
			}
			latencies = append(latencies, time.Since(start).Seconds())
		}
		if err := lv.Err(); err != nil {
			return nil, fmt.Errorf("background rebuild: %w", err)
		}
		sort.Float64s(latencies)
		// Let any in-flight background rebuild finish so the swap count
		// reflects the row's full write volume (a rebuild at bench scale
		// completes in well under a second; the count is informational).
		swaps := float64(lv.Stats()[0].Compactions)
		if frac > 0 {
			time.Sleep(time.Second)
			swaps = float64(lv.Stats()[0].Compactions)
		}
		t.XTicks = append(t.XTicks, fmt.Sprintf("%.2f", frac))
		appendRow(t, quantile(latencies, 0.50), quantile(latencies, 0.99), swaps)
	}
	return t, nil
}

// quantile returns the q-quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
