// Adcoverage reproduces the paper's Scenario 3: a transit operator sells
// on-board advertising (or Wi-Fi) and wants the k routes that keep
// passengers exposed for the longest share of their journeys. Service is
// the fraction of each commute's length that runs alongside the route's
// stops — the Length scenario over a Segmented TQ-tree, which indexes
// every journey segment where it lives in space.
package main

import (
	"fmt"
	"log"

	trajcover "github.com/trajcover/trajcover"
)

func main() {
	city := trajcover.BeijingCity()

	// 8k long GPS traces (10–60 points) and 120 candidate routes.
	commutes := trajcover.GPSTraces(city, 8000, 10, 60, 21)
	routes := trajcover.BusRoutes(city, 120, 40, 22)

	idx, err := trajcover.NewIndex(commutes, trajcover.IndexOptions{
		Variant:  trajcover.Segmented,
		Ordering: trajcover.ZOrdering,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := trajcover.Query{Scenario: trajcover.Length, Psi: trajcover.DefaultPsi}

	top, err := idx.TopK(routes, 6, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("routes by advertising exposure (sum of journey-length fractions):")
	for i, r := range top {
		fmt.Printf("  %d. route %-4d exposure %.2f journey-equivalents\n",
			i+1, r.Facility.ID, r.Service)
	}

	// Sanity view: the same ranking from the traditional baseline.
	bl, err := trajcover.NewBaseline(commutes, trajcover.Segmented)
	if err != nil {
		log.Fatal(err)
	}
	check, err := bl.TopK(routes, 1, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline agrees the best route is %d (exposure %.2f)\n",
		check[0].Facility.ID, check[0].Service)

	// PointCount view of the same fleet decision: fraction of GPS points
	// within reach rather than length share.
	qPts := trajcover.Query{Scenario: trajcover.PointCount, Psi: trajcover.DefaultPsi}
	byPoints, err := idx.TopK(routes, 1, qPts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("by point coverage the best route is %d (%.2f)\n",
		byPoints[0].Facility.ID, byPoints[0].Service)
}
