// Persistence shows the operational side of the library: simplify raw
// GPS traces, build an index, snapshot it to disk, restore it in a fresh
// process, and drill into one route's riders with the reverse range
// search (ServedUsers).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	trajcover "github.com/trajcover/trajcover"
)

func main() {
	city := trajcover.BeijingCity()

	// Raw traces: 3k trips of 20–80 GPS fixes.
	raw := trajcover.GPSTraces(city, 3000, 20, 80, 31)
	var rawPoints int
	for _, t := range raw {
		rawPoints += t.Len()
	}

	// Simplify to ~50 m tolerance before indexing (what one would do
	// with real Geolife data).
	users, err := trajcover.Simplify(raw, 50)
	if err != nil {
		log.Fatal(err)
	}
	var simplePoints int
	for _, t := range users {
		simplePoints += t.Len()
	}
	fmt.Printf("simplified %d traces: %d -> %d points (%.0f%% kept)\n",
		len(raw), rawPoints, simplePoints, 100*float64(simplePoints)/float64(rawPoints))

	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{
		Variant:  trajcover.FullTrajectory,
		Ordering: trajcover.ZOrdering,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot to disk.
	path := filepath.Join(os.TempDir(), "trajcover-demo.snap")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.WriteSnapshot(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("snapshot written: %s (%d KiB)\n", path, info.Size()/1024)

	// Restore — as a fresh process would.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := trajcover.ReadSnapshot(g)
	g.Close()
	os.Remove(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored index with %d trajectories\n\n", restored.Len())

	// Reverse range search on the best route: who exactly rides it?
	routes := trajcover.BusRoutes(city, 60, 32, 32)
	q := trajcover.Query{Scenario: trajcover.PointCount, Psi: trajcover.DefaultPsi}
	top, err := restored.TopK(routes, 1, q)
	if err != nil {
		log.Fatal(err)
	}
	best := top[0]
	riders, err := restored.ServedUsers(best.Facility, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route %d serves %d users (total service %.1f); best-served five:\n",
		best.Facility.ID, len(riders), best.Service)
	for i, r := range riders[:min(5, len(riders))] {
		fmt.Printf("  %d. user %-5d fraction of trip covered %.2f\n", i+1, r.User, r.Value)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
