// Persistence shows the operational side of the library, durability
// edition: open a live index with a write-ahead log, take acknowledged
// writes, crash without any shutdown, and reopen the same directory —
// every acknowledged write is still there, proven by comparing answers
// against an index built fresh from the same logical history. The
// final act compacts the log with a checkpoint, which is also what a
// running tqserve does on POST /v1/checkpoint.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	trajcover "github.com/trajcover/trajcover"
)

func main() {
	city := trajcover.BeijingCity()
	dir, err := os.MkdirTemp("", "trajcover-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Raw traces, simplified to ~50 m tolerance before indexing (what
	// one would do with real Geolife data).
	raw := trajcover.GPSTraces(city, 3000, 20, 80, 31)
	users, err := trajcover.Simplify(raw, 50)
	if err != nil {
		log.Fatal(err)
	}
	base, arrivals := users[:2500], users[2500:]

	walOpts := trajcover.WALOptions{
		Dir:  filepath.Join(dir, "wal"),
		Sync: trajcover.WALSyncAlways, // ack ⇒ fsynced
	}
	pol := trajcover.LivePolicy{}
	bootstrap := func() (*trajcover.LiveShardedIndex, error) {
		return trajcover.NewLiveShardedIndex(base, trajcover.LiveShardOptions{
			Shards:      2,
			Partitioner: trajcover.HashPartitioner(),
			Index: trajcover.IndexOptions{
				Variant:  trajcover.FullTrajectory,
				Ordering: trajcover.ZOrdering,
			},
			Policy: pol,
		})
	}

	// --- process one: open with a WAL, write, then "crash" -----------
	//
	// The bootstrap closure runs on the first open only; afterwards the
	// directory itself is the source of truth.
	idx, err := trajcover.OpenLiveShardedIndex(walOpts, pol, bootstrap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened WAL-backed index: %d trajectories, wal at %s\n", idx.Len(), walOpts.Dir)

	for _, u := range arrivals {
		if err := idx.Insert(u); err != nil { // returns only after the record is fsynced
			log.Fatal(err)
		}
	}
	if _, err := idx.Delete(base[0].ID); err != nil {
		log.Fatal(err)
	}
	if st, ok := idx.WALStats(); ok {
		fmt.Printf("acknowledged %d+1 writes: wal has %d records in %d segment(s), %d fsyncs\n",
			len(arrivals), st.Records, st.Segments, st.Fsyncs)
	}

	// Crash. No Close, no snapshot, no warning — the handles die with
	// the process. (In-process we simply abandon the value; the
	// TestWALCrashRecovery property test does this for real with
	// SIGKILL at random points mid-history.)
	idx = nil
	_ = idx

	// --- process two: reopen the same directory ----------------------
	recovered, err := trajcover.OpenLiveShardedIndex(walOpts, pol, bootstrap)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	fmt.Printf("reopened after crash: %d trajectories recovered\n", recovered.Len())

	// Verify: an index built fresh from the same logical history must
	// answer identically.
	fresh, err := bootstrap()
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range arrivals {
		if err := fresh.Insert(u); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := fresh.Delete(base[0].ID); err != nil {
		log.Fatal(err)
	}

	routes := trajcover.BusRoutes(city, 60, 32, 32)
	q := trajcover.Query{Scenario: trajcover.PointCount, Psi: trajcover.DefaultPsi}
	got, err := recovered.TopK(routes, 3, q)
	if err != nil {
		log.Fatal(err)
	}
	want, err := fresh.TopK(routes, 3, q)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if got[i].Facility.ID != want[i].Facility.ID || got[i].Service != want[i].Service {
			log.Fatalf("recovered answer diverges at rank %d: (%d, %v) vs (%d, %v)",
				i+1, got[i].Facility.ID, got[i].Service, want[i].Facility.ID, want[i].Service)
		}
		fmt.Printf("  rank %d: route %-4d service %.0f (recovered == fresh)\n",
			i+1, got[i].Facility.ID, got[i].Service)
	}

	// Checkpoint: durable TQLIVE01 snapshot of the current state, then
	// the replayed segments are deleted — bounding the next restart's
	// replay to writes after this point.
	if err := recovered.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	if st, ok := recovered.WALStats(); ok {
		fmt.Printf("checkpointed: wal truncated to %d segment(s), %d bytes\n", st.Segments, st.Bytes)
	}
}
