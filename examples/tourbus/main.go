// Tourbus reproduces the paper's Scenario 2: a tour operator runs k bus
// routes through a city of tourists, each tourist having a list of POIs
// to visit (a multipoint trajectory). A tourist is served partially — the
// fraction of their POIs reachable from the routes — so the query uses
// PointCount service over a FullTrajectory TQ-tree, and the k routes are
// chosen jointly with MaxkCovRST (a tourist can combine routes).
package main

import (
	"fmt"
	"log"

	trajcover "github.com/trajcover/trajcover"
)

func main() {
	city := trajcover.NewYorkCity()

	// 20k tourists with 2..8 POIs each; 150 candidate tour-bus routes.
	tourists := trajcover.Checkins(city, 20000, 8, 11)
	routes := trajcover.BusRoutes(city, 150, 24, 12)

	idx, err := trajcover.NewIndex(tourists, trajcover.IndexOptions{
		Variant:  trajcover.FullTrajectory,
		Ordering: trajcover.ZOrdering,
	})
	if err != nil {
		log.Fatal(err)
	}

	q := trajcover.Query{Scenario: trajcover.PointCount, Psi: trajcover.DefaultPsi}

	// Individually best routes first, for comparison.
	top, err := idx.TopK(routes, 4, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("individually best routes (expected POI-fraction served):")
	var individualSum float64
	for i, r := range top {
		fmt.Printf("  %d. route %-4d service %.1f\n", i+1, r.Facility.ID, r.Service)
		individualSum += r.Service
	}

	// Jointly best 4 routes: tourists hop between routes, so combined
	// coverage counts each POI once no matter how many routes reach it.
	best, err := idx.MaxCoverage(routes, 4, q, trajcover.CoverageOptions{
		Algorithm: trajcover.TwoStepGreedy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoint 4-route plan: combined service %.1f, %d tourists reached\n",
		best.Value, best.UsersServed)
	for i, f := range best.Facilities {
		fmt.Printf("  %d. route %d\n", i+1, f.ID)
	}
	fmt.Printf("\n(naive sum of individual services %.1f double-counts shared POIs)\n", individualSum)

	// Compare solvers on the same instance.
	gen, err := idx.MaxCoverage(routes, 4, q, trajcover.CoverageOptions{
		Algorithm: trajcover.Genetic,
		Genetic:   trajcover.GeneticOptions{Seed: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("genetic solver on the same instance: %.1f (greedy found %.1f)\n",
		gen.Value, best.Value)
}
