// Quickstart: build a TQ-tree over taxi-like trips, rank candidate bus
// routes with a kMaxRRST query, and pick a complementary route set with
// MaxkCovRST — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	trajcover "github.com/trajcover/trajcover"
)

func main() {
	// A synthetic New York: ~30 × 40 km with Zipf-weighted hotspots.
	city := trajcover.NewYorkCity()

	// 50k commuter trips (source → destination) and 200 candidate bus
	// routes with 32 stops each.
	users := trajcover.TaxiTrips(city, 50000, 1)
	routes := trajcover.BusRoutes(city, 200, 32, 2)

	// Index the trips. The zero options build the paper's default TQ(Z):
	// TwoPoint variant, z-ordered buckets, β = 64.
	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// A commuter is served when both trip endpoints are within ψ = 300 m
	// of a stop (the paper's Scenario 1).
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: trajcover.DefaultPsi}

	// kMaxRRST: the 5 routes that individually serve the most commuters.
	top, err := idx.TopK(routes, 5, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-5 routes by individual service:")
	for i, r := range top {
		fmt.Printf("  %d. route %-4d serves %.0f commuters\n", i+1, r.Facility.ID, r.Service)
	}

	// MaxkCovRST: the 5 routes that together serve the most commuters —
	// a commuter may board near home via one route and return via
	// another, so the best set is usually not the top-5 individuals.
	cov, err := idx.MaxCoverage(routes, 5, q, trajcover.CoverageOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest 5-route set (two-step greedy): %.0f combined service, %d users served\n",
		cov.Value, cov.UsersServed)
	for i, f := range cov.Facilities {
		fmt.Printf("  %d. route %d\n", i+1, f.ID)
	}

	// The combined set beats stacking the individual winners whenever
	// their riderships overlap.
	var topIDs []trajcover.ID
	for _, r := range top {
		topIDs = append(topIDs, r.Facility.ID)
	}
	fmt.Printf("\n(top-5 individuals were %v)\n", topIDs)
}
