// Busplanner reproduces the paper's Scenario 1: an ad-hoc transport
// operator wants new service routes that convert the most private-car
// commuters, comparing the TQ-tree against the traditional-index baseline
// on the same query, and showing incremental index maintenance as new
// trips stream in.
package main

import (
	"fmt"
	"log"
	"time"

	trajcover "github.com/trajcover/trajcover"
)

func main() {
	city := trajcover.NewYorkCity()
	users := trajcover.TaxiTrips(city, 100000, 7)
	routes := trajcover.BusRoutes(city, 300, 48, 8)
	q := trajcover.Query{Scenario: trajcover.Binary, Psi: trajcover.DefaultPsi}

	// Build the TQ(Z) index and the baseline over the same commuters.
	start := time.Now()
	idx, err := trajcover.NewIndex(users, trajcover.IndexOptions{Ordering: trajcover.ZOrdering})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TQ(Z) index over %d trips built in %v\n", idx.Len(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	bl, err := trajcover.NewBaseline(users, trajcover.TwoPoint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline point-quadtree built in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Same query, both methods: the answers must agree; the times do not.
	start = time.Now()
	fast, err := idx.TopK(routes, 8, q)
	if err != nil {
		log.Fatal(err)
	}
	tqTime := time.Since(start)

	start = time.Now()
	slow, err := bl.TopK(routes, 8, q)
	if err != nil {
		log.Fatal(err)
	}
	blTime := time.Since(start)

	fmt.Printf("kMaxRRST (k=8, %d candidate routes):\n", len(routes))
	fmt.Printf("  TQ(Z):    %8v\n", tqTime.Round(time.Microsecond))
	fmt.Printf("  baseline: %8v  (%.0fx slower)\n\n", blTime.Round(time.Microsecond),
		float64(blTime)/float64(tqTime))

	fmt.Println("route  riders(TQ)  riders(BL)")
	for i := range fast {
		fmt.Printf("%5d  %10.0f  %10.0f\n", fast[i].Facility.ID, fast[i].Service, slow[i].Service)
	}

	// New trips stream in: the TQ-tree supports in-place inserts (the
	// quadtree's regular space partitioning makes updates O(depth)).
	fresh := trajcover.TaxiTrips(city, 5000, 99)
	start = time.Now()
	inserted := 0
	for _, u := range fresh {
		u2, err := trajcover.NewTrajectory(trajcover.ID(200000+inserted), u.Points)
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.Insert(u2); err != nil {
			log.Fatal(err)
		}
		inserted++
	}
	fmt.Printf("\ninserted %d new trips in %v; index now holds %d\n",
		inserted, time.Since(start).Round(time.Millisecond), idx.Len())

	again, err := idx.TopK(routes, 1, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best route after the update: %d (%.0f riders)\n",
		again[0].Facility.ID, again[0].Service)
}
