package trajcover

// Multi-tenant serving: a TenantRegistry maps tenant IDs to independent
// LiveShardedIndex instances. Each durable tenant owns the subtree
// <Root>/<id>/ — its own WAL segments and checkpoint lineage — so
// tenants recover independently: one tenant's torn tail cannot block
// another's boot. Tenants spring into existence lazily on first write
// (never on a read, and never for an invalid ID), and idle tenants can
// be checkpointed, closed, and evicted LRU when MaxOpen is exceeded;
// the next access reopens them from their own directory.
//
// ID validation, per-tenant admission limits, and the overrides file
// live in internal/tenant; this file owns only the id → index mapping,
// because it is the piece that must see LiveShardedIndex.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/trajcover/trajcover/internal/tenant"
)

// TenantDefault is the tenant requests without an explicit tenant
// belong to — the backward-compatible single-tenant world.
const TenantDefault = tenant.DefaultID

// ErrUnknownTenant rejects reads of tenants that do not exist (reads
// never create tenants; only writes do).
var ErrUnknownTenant = fmt.Errorf("trajcover: unknown tenant")

// ValidateTenantID reports whether id is a legal tenant ID (a safe
// single path component: 1–64 bytes of [a-zA-Z0-9._-], starting with a
// letter or digit, no ".."). The error is a client error.
func ValidateTenantID(id string) error { return tenant.ValidateID(id) }

// IsBadTenantID reports whether err is a tenant-ID validation failure.
func IsBadTenantID(err error) bool { return tenant.IsBadID(err) }

// TenantRegistryOptions configures OpenTenantRegistry.
type TenantRegistryOptions struct {
	// Root is the multi-tenant WAL root; tenant id lives under
	// <Root>/<id>/. Empty Root makes every tenant purely in-memory (no
	// durability, nothing to evict to).
	Root string
	// WAL carries the per-tenant durability knobs (sync policy, segment
	// size). WAL.Dir is ignored — each tenant's directory is derived
	// from Root.
	WAL WALOptions
	// Policy tunes each tenant index's background compaction.
	Policy LivePolicy
	// Shards, Partitioner, and Index shape newly created tenant indexes.
	Shards      int
	Partitioner Partitioner
	Index       IndexOptions
	// NewTenant optionally seeds a first-seen tenant's corpus (nil:
	// tenants start empty).
	NewTenant func(id string) ([]*Trajectory, error)
	// MaxOpen caps concurrently open tenant indexes (0: unlimited).
	// Past the cap, idle durable tenants — refcount zero, not bound via
	// Bind — are checkpointed, closed, and dropped LRU.
	MaxOpen int
	// DisableCreate rejects writes to tenants that do not already exist
	// (on disk or bound); reads always reject unknown tenants.
	DisableCreate bool
}

// tenantEntry is one open tenant index.
type tenantEntry struct {
	id      string
	idx     *LiveShardedIndex
	refs    int
	lastUse uint64
	// durable entries own <Root>/<id>/ and can be evicted + reopened;
	// pinned entries were Bind-ed by the caller and are never evicted.
	durable bool
	pinned  bool
}

// TenantRegistry maps tenant IDs to live indexes. Safe for concurrent
// use. Construct with OpenTenantRegistry.
type TenantRegistry struct {
	opts TenantRegistryOptions

	mu     sync.Mutex
	open   map[string]*tenantEntry
	seq    uint64
	closed bool

	created  uint64
	reopened uint64
	evicted  uint64
}

// TenantRegistryStats counts registry traffic.
type TenantRegistryStats struct {
	Open     int    `json:"open"`
	Created  uint64 `json:"created"`
	Reopened uint64 `json:"reopened"`
	Evicted  uint64 `json:"evicted"`
}

// OpenTenantRegistry builds a registry. With a Root, the directory is
// created and tenants found under it (from earlier runs) reopen lazily
// on first access.
func OpenTenantRegistry(opts TenantRegistryOptions) (*TenantRegistry, error) {
	if opts.Root != "" {
		if err := os.MkdirAll(opts.Root, 0o755); err != nil {
			return nil, err
		}
	}
	return &TenantRegistry{opts: opts, open: map[string]*tenantEntry{}}, nil
}

// Bind installs a caller-built index as tenant id (typically "default"
// built from a snapshot or synthetic corpus, possibly already opened
// with its own WAL). Bound tenants are pinned: never LRU-evicted, and
// reads of them always succeed.
func (r *TenantRegistry) Bind(id string, idx *LiveShardedIndex) error {
	if err := tenant.ValidateID(id); err != nil {
		return err
	}
	if idx == nil {
		return fmt.Errorf("trajcover: Bind(%q): nil index", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("trajcover: registry closed")
	}
	if _, dup := r.open[id]; dup {
		return fmt.Errorf("trajcover: tenant %q already open", id)
	}
	r.seq++
	r.open[id] = &tenantEntry{id: id, idx: idx, lastUse: r.seq, pinned: true, durable: idx.wal != nil}
	return nil
}

// Acquire resolves tenant id to its index, reopening it from disk or —
// when create is true (the write path) — creating it. The returned
// release func MUST be called when the caller is done with the index;
// the refcount keeps the tenant from being evicted mid-request.
// Unknown tenants on the read path return ErrUnknownTenant; invalid IDs
// return a bad-ID error (IsBadTenantID) without touching the registry
// state or the filesystem.
func (r *TenantRegistry) Acquire(id string, create bool) (*LiveShardedIndex, func(), error) {
	if err := tenant.ValidateID(id); err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, fmt.Errorf("trajcover: registry closed")
	}
	e := r.open[id]
	if e == nil {
		onDisk := r.opts.Root != "" && dirExists(filepath.Join(r.opts.Root, id))
		if !onDisk && (!create || r.opts.DisableCreate) {
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
		}
		idx, err := r.openTenantLocked(id)
		if err != nil {
			return nil, nil, err
		}
		e = &tenantEntry{id: id, idx: idx, durable: r.opts.Root != ""}
		r.open[id] = e
		if onDisk {
			r.reopened++
		} else {
			r.created++
		}
	}
	// Take the reference and the recency stamp BEFORE enforcing MaxOpen,
	// so the entry this very call returns can never be its own eviction
	// victim.
	e.refs++
	r.seq++
	e.lastUse = r.seq
	r.evictLocked()
	var once sync.Once
	release := func() {
		once.Do(func() {
			r.mu.Lock()
			e.refs--
			r.mu.Unlock()
		})
	}
	return e.idx, release, nil
}

// openTenantLocked opens (or creates) tenant id's index. Caller holds
// r.mu — tenant opens are serialized, which also makes create-vs-create
// races impossible.
func (r *TenantRegistry) openTenantLocked(id string) (*LiveShardedIndex, error) {
	build := func() (*LiveShardedIndex, error) {
		var users []*Trajectory
		if r.opts.NewTenant != nil {
			var err error
			if users, err = r.opts.NewTenant(id); err != nil {
				return nil, err
			}
		}
		return NewLiveShardedIndex(users, LiveShardOptions{
			Shards:      r.opts.Shards,
			Partitioner: r.opts.Partitioner,
			Index:       r.opts.Index,
			Policy:      r.opts.Policy,
		})
	}
	if r.opts.Root == "" {
		return build()
	}
	w := r.opts.WAL
	w.Dir = filepath.Join(r.opts.Root, id)
	return OpenLiveShardedIndex(w, r.opts.Policy, build)
}

// evictLocked enforces MaxOpen: while too many tenants are open, the
// least-recently-used idle durable one is checkpointed, closed, and
// dropped (to reopen from its directory on next access). Pinned or
// in-use tenants are never touched; an eviction whose checkpoint fails
// leaves the tenant open rather than risk its tail (the failed
// checkpoint also flips that tenant to degraded mode, so its own
// backoff probe — not the eviction path — owns the retry).
func (r *TenantRegistry) evictLocked() {
	if r.opts.MaxOpen <= 0 {
		return
	}
	for len(r.open) > r.opts.MaxOpen {
		var victim *tenantEntry
		for _, e := range r.open {
			if e.pinned || !e.durable || e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		if err := victim.idx.Checkpoint(); err != nil {
			return
		}
		if err := victim.idx.Close(); err != nil {
			return
		}
		delete(r.open, victim.id)
		r.evicted++
	}
}

// Checkpoint checkpoints tenant id (which must exist; reads never
// create tenants, and neither does an explicit checkpoint).
func (r *TenantRegistry) Checkpoint(id string) error {
	idx, release, err := r.Acquire(id, false)
	if err != nil {
		return err
	}
	defer release()
	return idx.Checkpoint()
}

// CheckpointTo checkpoints tenant id and streams the checkpoint bytes
// to w (durable-first, like LiveShardedIndex.CheckpointTo).
func (r *TenantRegistry) CheckpointTo(id string, w io.Writer) error {
	idx, release, err := r.Acquire(id, false)
	if err != nil {
		return err
	}
	defer release()
	return idx.CheckpointTo(w)
}

// Tenants lists every known tenant — open ones plus (for a durable
// registry) the evicted ones still on disk — sorted.
func (r *TenantRegistry) Tenants() []string {
	seen := map[string]bool{}
	r.mu.Lock()
	for id := range r.open {
		seen[id] = true
	}
	root := r.opts.Root
	r.mu.Unlock()
	if root != "" {
		if ents, err := os.ReadDir(root); err == nil {
			for _, e := range ents {
				if e.IsDir() && tenant.ValidateID(e.Name()) == nil {
					seen[e.Name()] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Degraded reports every OPEN tenant currently in degraded read-only
// mode, as id → cause. Evicted tenants have no live state to degrade
// and are deliberately not reopened by this scan (health reporting must
// never widen the working set), so a healthy registry returns an empty
// map cheaply. Degradation is per tenant: each tenant's index owns its
// own WAL directory, state machine, and recovery probe, so one
// tenant's dying disk never degrades another.
func (r *TenantRegistry) Degraded() map[string]string {
	r.mu.Lock()
	type openTenant struct {
		id  string
		idx *LiveShardedIndex
	}
	snap := make([]openTenant, 0, len(r.open))
	for id, e := range r.open {
		snap = append(snap, openTenant{id, e.idx})
	}
	r.mu.Unlock()
	out := map[string]string{}
	for _, t := range snap {
		if h := t.idx.Health(); h.Degraded {
			out[t.id] = h.Cause
		}
	}
	return out
}

// Health reports tenant id's degraded-mode state. The tenant must be
// known; like reads, health checks never create tenants.
func (r *TenantRegistry) Health(id string) (Health, error) {
	idx, release, err := r.Acquire(id, false)
	if err != nil {
		return Health{}, err
	}
	defer release()
	return idx.Health(), nil
}

// Stats reads the registry counters.
func (r *TenantRegistry) Stats() TenantRegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return TenantRegistryStats{
		Open:     len(r.open),
		Created:  r.created,
		Reopened: r.reopened,
		Evicted:  r.evicted,
	}
}

// Close closes every open tenant index (flushing and fsyncing WAL
// tails). Further Acquires fail. Idempotent; returns the first error.
func (r *TenantRegistry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	ids := make([]string, 0, len(r.open))
	for id := range r.open {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var first error
	for _, id := range ids {
		if err := r.open[id].idx.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
