package trajcover

// Snapshot persistence: an Index or ShardedIndex can be written to and
// restored from a compact binary stream. A snapshot stores the
// configuration and the raw trajectories; restoring rebuilds the
// TQ-tree(s), which is fast (a few hundred milliseconds per million
// trips) and keeps the format decoupled from the in-memory node layout.
//
// Two rebuild-format streams share the encoding of a trajectory payload:
//
//	TQSNAP02 — single index: header, one trajectory payload, CRC trailer.
//	           (TQSNAP01, without the MaxDepth header field, is still
//	           read.)
//	TQSHRD01 — sharded container: CRC'd shared header (options, shard
//	           count, partitioner kind), then one length-prefixed,
//	           individually CRC'd frame per shard. The frames record the
//	           partition itself, so restoring never re-runs the
//	           partitioner — each shard rebuilds from its own frame, one
//	           frame (and one shard) at a time.
//
// The frozen columnar formats (TQSNAP03/TQSHRD02, snapshot_frozen.go)
// serialize a FrozenIndex's flat slices verbatim instead, trading the
// rebuild for a bulk read plus bounds checks on restore.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// Snapshot magic numbers: the single-index stream (current and legacy)
// and the sharded container.
var (
	snapshotMagic   = [8]byte{'T', 'Q', 'S', 'N', 'A', 'P', '0', '2'}
	snapshotMagicV1 = [8]byte{'T', 'Q', 'S', 'N', 'A', 'P', '0', '1'}
	shardedMagic    = [8]byte{'T', 'Q', 'S', 'H', 'R', 'D', '0', '1'}
)

// ErrBadSnapshot is returned when a snapshot stream is malformed or its
// checksum does not match.
var ErrBadSnapshot = errors.New("trajcover: invalid snapshot")

// WriteSnapshot serializes the index (configuration and trajectories) to
// w. The stream is framed with a magic header and a CRC32 trailer.
func (x *Index) WriteSnapshot(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	tree := x.engine.Tree()
	header := []uint64{
		uint64(tree.Variant()),
		uint64(tree.Ordering()),
		uint64(tree.Beta()),
		math.Float64bits(tree.Bounds().MinX),
		math.Float64bits(tree.Bounds().MinY),
		math.Float64bits(tree.Bounds().MaxX),
		math.Float64bits(tree.Bounds().MaxY),
		uint64(tree.MaxDepth()),
		uint64(x.set.Len()),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, t := range x.set.All {
		if err := writeTrajectory(bw, t); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: checksum of everything written so far, outside the
	// checksummed stream itself.
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// writeTrajectory encodes one trajectory: uint32 id, uint32 point count,
// then the points as float64 x/y pairs.
func writeTrajectory(w io.Writer, t *Trajectory) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(t.ID)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(t.Len())); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := binary.Write(w, binary.LittleEndian, p.X); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// trajectorySize returns the encoded byte size of writeTrajectory's
// output — used to length-prefix shard frames without buffering them.
func trajectorySize(t *Trajectory) uint64 {
	return 4 + 4 + 16*uint64(t.Len())
}

// readTrajectory decodes one trajectory written by writeTrajectory.
func readTrajectory(r io.Reader, i uint64) (*Trajectory, error) {
	var id, npts uint32
	if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
		return nil, fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	if err := binary.Read(r, binary.LittleEndian, &npts); err != nil {
		return nil, fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	if npts < 2 || npts > 1<<24 {
		return nil, fmt.Errorf("%w: trajectory %d has %d points", ErrBadSnapshot, i, npts)
	}
	pts := make([]geo.Point, npts)
	for j := range pts {
		if err := binary.Read(r, binary.LittleEndian, &pts[j].X); err != nil {
			return nil, fmt.Errorf("%w: truncated points", ErrBadSnapshot)
		}
		if err := binary.Read(r, binary.LittleEndian, &pts[j].Y); err != nil {
			return nil, fmt.Errorf("%w: truncated points", ErrBadSnapshot)
		}
	}
	t, err := trajectory.New(trajectory.ID(id), pts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return t, nil
}

// hashReader hashes exactly the bytes its consumer reads, regardless of
// any read-ahead the underlying reader performs — required so a trailing
// checksum can be read outside the hashed region.
type hashReader struct {
	r   io.Reader
	crc io.Writer
}

func (h *hashReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if n > 0 {
		h.crc.Write(p[:n])
	}
	return n, err
}

// maxTrajectories bounds the per-stream (and per-frame) trajectory count
// a reader will believe, so corrupt counts fail fast instead of
// attempting absurd allocations.
const maxTrajectories = 1 << 31

// ReadSnapshot restores an Index written by WriteSnapshot, rebuilding the
// TQ-tree over the stored trajectories. Sharded snapshots are detected
// and rejected with a pointer to ReadShardedSnapshot.
func ReadSnapshot(r io.Reader) (*Index, error) {
	base := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	br := &hashReader{r: base, crc: crc}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic == shardedMagic || magic == shardedFrozenMagic {
		return nil, fmt.Errorf("%w: sharded snapshot; use ReadShardedSnapshot or ReadFrozenShardedSnapshot", ErrBadSnapshot)
	}
	if magic == frozenMagic {
		return nil, fmt.Errorf("%w: frozen snapshot; use ReadFrozenSnapshot", ErrBadSnapshot)
	}
	if magic == liveMagic {
		return nil, fmt.Errorf("%w: live snapshot; use ReadLiveSnapshot", ErrBadSnapshot)
	}
	if magic != snapshotMagic && magic != snapshotMagicV1 {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	// The v1 header lacks the MaxDepth field; a zero MaxDepth rebuilds
	// with the default depth, which is all a v1 stream can promise.
	nFields := 9
	if magic == snapshotMagicV1 {
		nFields = 8
	}
	var header [9]uint64
	for i := 0; i < nFields; i++ {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
		}
	}
	n := header[nFields-1]
	maxDepth := uint64(0)
	if magic != snapshotMagicV1 {
		maxDepth = header[7]
	}
	opts := IndexOptions{
		Variant:  Variant(header[0]),
		Ordering: Ordering(header[1]),
		Beta:     int(header[2]),
		MaxDepth: int(maxDepth),
		Bounds: geo.Rect{
			MinX: math.Float64frombits(header[3]),
			MinY: math.Float64frombits(header[4]),
			MaxX: math.Float64frombits(header[5]),
			MaxY: math.Float64frombits(header[6]),
		},
	}
	if n > maxTrajectories {
		return nil, fmt.Errorf("%w: implausible trajectory count %d", ErrBadSnapshot, n)
	}
	users := make([]*Trajectory, 0, n)
	for i := uint64(0); i < n; i++ {
		t, err := readTrajectory(br, i)
		if err != nil {
			return nil, err
		}
		users = append(users, t)
	}
	want := crc.Sum32()
	var got uint32
	// The trailer is outside the hashed region: read it from the base
	// reader, not through the hashReader.
	if err := binary.Read(base, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrBadSnapshot)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return NewIndex(users, opts)
}

// WriteSnapshot serializes the sharded index to w as a multi-shard
// container: a CRC'd shared header followed by one length-prefixed,
// individually CRC'd trajectory frame per shard. Per-frame checksums let
// a reader localize corruption to one shard, and the length prefixes let
// tooling skip frames without decoding them.
func (x *ShardedIndex) WriteSnapshot(w io.Writer) error {
	parts := x.s.Partition()
	eng := x.s.Engine(0)
	bounds := x.s.Bounds()
	kind := x.s.PartitionerKind()

	// Shared header, hashed into its own CRC.
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(shardedMagic[:]); err != nil {
		return err
	}
	header := []uint64{
		uint64(eng.Tree().Variant()),
		uint64(eng.Tree().Ordering()),
		uint64(eng.Tree().Beta()),
		math.Float64bits(bounds.MinX),
		math.Float64bits(bounds.MinY),
		math.Float64bits(bounds.MaxX),
		math.Float64bits(bounds.MaxY),
		uint64(eng.Tree().MaxDepth()),
		uint64(len(parts)),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(kind))); err != nil {
		return err
	}
	if _, err := bw.WriteString(kind); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}

	// Per-shard frames: uint64 payload length, payload (uint64 count +
	// trajectories), uint32 payload CRC.
	for _, part := range parts {
		payloadLen := uint64(8)
		for _, t := range part {
			payloadLen += trajectorySize(t)
		}
		if err := binary.Write(w, binary.LittleEndian, payloadLen); err != nil {
			return err
		}
		fcrc := crc32.NewIEEE()
		fw := bufio.NewWriter(io.MultiWriter(w, fcrc))
		if err := binary.Write(fw, binary.LittleEndian, uint64(len(part))); err != nil {
			return err
		}
		for _, t := range part {
			if err := writeTrajectory(fw, t); err != nil {
				return err
			}
		}
		if err := fw.Flush(); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, fcrc.Sum32()); err != nil {
			return err
		}
	}
	return nil
}

// ReadShardedSnapshot restores a ShardedIndex written by
// (*ShardedIndex).WriteSnapshot, rebuilding each shard's TQ-tree from its
// own frame — the recorded partition is reproduced verbatim, so the
// partitioner is never re-run. Snapshots recorded with a custom
// partitioner restore fully for serving but reject further Inserts.
func ReadShardedSnapshot(r io.Reader) (*ShardedIndex, error) {
	base := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	br := &hashReader{r: base, crc: crc}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic == snapshotMagic || magic == snapshotMagicV1 || magic == frozenMagic {
		return nil, fmt.Errorf("%w: single-index snapshot; use ReadSnapshot or ReadFrozenSnapshot", ErrBadSnapshot)
	}
	if magic == shardedFrozenMagic {
		return nil, fmt.Errorf("%w: frozen sharded snapshot; use ReadFrozenShardedSnapshot", ErrBadSnapshot)
	}
	if magic == liveMagic {
		return nil, fmt.Errorf("%w: live snapshot; use ReadLiveSnapshot", ErrBadSnapshot)
	}
	if magic != shardedMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	var header [9]uint64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
		}
	}
	var kindLen uint32
	if err := binary.Read(br, binary.LittleEndian, &kindLen); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	if kindLen > 256 {
		return nil, fmt.Errorf("%w: implausible partitioner kind length %d", ErrBadSnapshot, kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kindBuf); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	wantHdr := crc.Sum32()
	var gotHdr uint32
	if err := binary.Read(base, binary.LittleEndian, &gotHdr); err != nil {
		return nil, fmt.Errorf("%w: missing header checksum", ErrBadSnapshot)
	}
	if gotHdr != wantHdr {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrBadSnapshot)
	}

	nShards := header[8]
	const maxShards = 1 << 16
	if nShards == 0 || nShards > maxShards {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrBadSnapshot, nShards)
	}
	parts := make([][]*Trajectory, nShards)
	for s := uint64(0); s < nShards; s++ {
		var payloadLen uint64
		if err := binary.Read(base, binary.LittleEndian, &payloadLen); err != nil {
			return nil, fmt.Errorf("%w: truncated frame %d", ErrBadSnapshot, s)
		}
		fcrc := crc32.NewIEEE()
		fr := &hashReader{r: io.LimitReader(base, int64(payloadLen)), crc: fcrc}
		var count uint64
		if err := binary.Read(fr, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("%w: truncated frame %d", ErrBadSnapshot, s)
		}
		// The smallest encodable trajectory is 40 bytes (id + count + 2
		// points), so the frame length bounds a plausible count — a
		// corrupt count field must fail here, before the allocation
		// below could ask for gigabytes.
		if count > maxTrajectories || payloadLen < 8 || count > (payloadLen-8)/40 {
			return nil, fmt.Errorf("%w: implausible trajectory count %d in frame %d", ErrBadSnapshot, count, s)
		}
		part := make([]*Trajectory, 0, count)
		for i := uint64(0); i < count; i++ {
			t, err := readTrajectory(fr, i)
			if err != nil {
				return nil, fmt.Errorf("frame %d: %w", s, err)
			}
			part = append(part, t)
		}
		// The frame must be fully consumed: leftover bytes mean the
		// length prefix and the payload disagree.
		if n, _ := io.Copy(io.Discard, fr); n != 0 {
			return nil, fmt.Errorf("%w: frame %d has %d trailing bytes", ErrBadSnapshot, s, n)
		}
		wantFrame := fcrc.Sum32()
		var gotFrame uint32
		if err := binary.Read(base, binary.LittleEndian, &gotFrame); err != nil {
			return nil, fmt.Errorf("%w: frame %d missing checksum", ErrBadSnapshot, s)
		}
		if gotFrame != wantFrame {
			return nil, fmt.Errorf("%w: frame %d checksum mismatch", ErrBadSnapshot, s)
		}
		parts[s] = part
	}

	part, _ := shard.PartitionerOf(string(kindBuf))
	s, err := shard.FromPartition(parts, shard.Options{
		Partitioner: part,
		Tree: tqtree.Options{
			Variant:  tqtree.Variant(header[0]),
			Ordering: tqtree.Ordering(header[1]),
			Beta:     int(header[2]),
			MaxDepth: int(header[7]),
			Bounds: geo.Rect{
				MinX: math.Float64frombits(header[3]),
				MinY: math.Float64frombits(header[4]),
				MaxX: math.Float64frombits(header[5]),
				MaxY: math.Float64frombits(header[6]),
			},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &ShardedIndex{s: s}, nil
}
