package trajcover

// Snapshot persistence: an Index can be written to and restored from a
// compact binary stream. The snapshot stores the configuration and the
// raw trajectories; restoring rebuilds the TQ-tree, which is fast (a few
// hundred milliseconds per million trips) and keeps the format decoupled
// from the in-memory node layout.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// snapshotMagic identifies trajcover snapshot streams.
var snapshotMagic = [8]byte{'T', 'Q', 'S', 'N', 'A', 'P', '0', '1'}

// ErrBadSnapshot is returned when a snapshot stream is malformed or its
// checksum does not match.
var ErrBadSnapshot = errors.New("trajcover: invalid snapshot")

// WriteSnapshot serializes the index (configuration and trajectories) to
// w. The stream is framed with a magic header and a CRC32 trailer.
func (x *Index) WriteSnapshot(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	tree := x.engine.Tree()
	header := []uint64{
		uint64(tree.Variant()),
		uint64(tree.Ordering()),
		uint64(tree.Beta()),
		math.Float64bits(tree.Bounds().MinX),
		math.Float64bits(tree.Bounds().MinY),
		math.Float64bits(tree.Bounds().MaxX),
		math.Float64bits(tree.Bounds().MaxY),
		uint64(x.set.Len()),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, t := range x.set.All {
		if err := binary.Write(bw, binary.LittleEndian, uint32(t.ID)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(t.Len())); err != nil {
			return err
		}
		for _, p := range t.Points {
			if err := binary.Write(bw, binary.LittleEndian, p.X); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, p.Y); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: checksum of everything written so far, outside the
	// checksummed stream itself.
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// hashReader hashes exactly the bytes its consumer reads, regardless of
// any read-ahead the underlying reader performs — required so a trailing
// checksum can be read outside the hashed region.
type hashReader struct {
	r   io.Reader
	crc io.Writer
}

func (h *hashReader) Read(p []byte) (int, error) {
	n, err := h.r.Read(p)
	if n > 0 {
		h.crc.Write(p[:n])
	}
	return n, err
}

// ReadSnapshot restores an Index written by WriteSnapshot, rebuilding the
// TQ-tree over the stored trajectories.
func ReadSnapshot(r io.Reader) (*Index, error) {
	base := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	br := &hashReader{r: base, crc: crc}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	var header [8]uint64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
		}
	}
	opts := IndexOptions{
		Variant:  Variant(header[0]),
		Ordering: Ordering(header[1]),
		Beta:     int(header[2]),
		Bounds: geo.Rect{
			MinX: math.Float64frombits(header[3]),
			MinY: math.Float64frombits(header[4]),
			MaxX: math.Float64frombits(header[5]),
			MaxY: math.Float64frombits(header[6]),
		},
	}
	n := header[7]
	const maxTrajectories = 1 << 31
	if n > maxTrajectories {
		return nil, fmt.Errorf("%w: implausible trajectory count %d", ErrBadSnapshot, n)
	}
	users := make([]*Trajectory, 0, n)
	for i := uint64(0); i < n; i++ {
		var id, npts uint32
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
		}
		if err := binary.Read(br, binary.LittleEndian, &npts); err != nil {
			return nil, fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
		}
		if npts < 2 || npts > 1<<24 {
			return nil, fmt.Errorf("%w: trajectory %d has %d points", ErrBadSnapshot, i, npts)
		}
		pts := make([]geo.Point, npts)
		for j := range pts {
			if err := binary.Read(br, binary.LittleEndian, &pts[j].X); err != nil {
				return nil, fmt.Errorf("%w: truncated points", ErrBadSnapshot)
			}
			if err := binary.Read(br, binary.LittleEndian, &pts[j].Y); err != nil {
				return nil, fmt.Errorf("%w: truncated points", ErrBadSnapshot)
			}
		}
		t, err := trajectory.New(trajectory.ID(id), pts)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		users = append(users, t)
	}
	want := crc.Sum32()
	var got uint32
	// The trailer is outside the hashed region: read it from the base
	// reader, not through the hashReader.
	if err := binary.Read(base, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrBadSnapshot)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return NewIndex(users, opts)
}
