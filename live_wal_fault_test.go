package trajcover

// The degraded-mode property suite: scripted and seeded-random disk
// fault schedules injected under the WAL and checkpoint IO, asserting
// the PR's three claims. (1) Ack invariant: answers stay byte-identical
// to a fresh build of a history prefix containing every acknowledged
// write, through wedges and recoveries, with nothing replayed and
// nothing acked that the disk refused. (2) The degraded state machine
// is monotone and observable: writes fail fast with ErrDegraded,
// queries keep serving, Entries/Exits only grow, and the backoff probe
// exits degraded mode without a process restart. (3) No goroutine leaks
// across wedge→recover cycles. The CI chaos job runs this under -race
// with TRAJCOVER_STRESS.

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/trajcover/trajcover/internal/faultfs"
)

// faultWALOptions are crashWALOptions plus an injector and a probe fast
// enough for tests (wedge→recover cycles in milliseconds).
func faultWALOptions(dir string, inj *faultfs.Injector) WALOptions {
	o := crashWALOptions(dir)
	o.FS = inj
	o.ProbeMin = 2 * time.Millisecond
	o.ProbeMax = 50 * time.Millisecond
	return o
}

// waitHealthy polls until the index exits degraded mode — the probe's
// job, never the test's.
func waitHealthy(t *testing.T, x *LiveShardedIndex, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for x.Degraded() {
		if time.Now().After(deadline) {
			t.Fatalf("probe did not recover within %v: health %+v", timeout, x.Health())
		}
		time.Sleep(time.Millisecond)
	}
}

// applyOp applies one scripted op, riding out degraded windows: on
// ErrDegraded it waits for the probe to recover and retries. A retried
// insert that comes back ErrDuplicateID was applied-but-unacked when
// the disk died (the recovery checkpoint made it durable); a retried
// delete of an already-applied target returns (false, nil). Both count
// as done.
func applyOp(t *testing.T, x *LiveShardedIndex, op crashOp) {
	t.Helper()
	for {
		var err error
		if op.insert != nil {
			err = x.Insert(op.insert)
		} else {
			_, err = x.Delete(op.del)
		}
		switch {
		case err == nil:
			return
		case op.insert != nil && errors.Is(err, ErrDuplicateID):
			return
		case IsDegraded(err):
			waitHealthy(t, x, 20*time.Second)
		default:
			t.Fatalf("write failed outside the degraded contract: %v", err)
		}
	}
}

// assertMonotone checks the observable transition invariant.
func assertMonotone(t *testing.T, h Health) {
	t.Helper()
	diff := h.Entries - h.Exits
	if h.Exits > h.Entries || diff > 1 {
		t.Fatalf("non-monotone transitions: %+v", h)
	}
	if (diff == 1) != h.Degraded {
		t.Fatalf("Entries-Exits=%d disagrees with Degraded=%v: %+v", diff, h.Degraded, h)
	}
}

// TestDegradedModeAndProbeRecovery is the scripted anchor: one injected
// fsync failure mid-history must flip the index to degraded (typed
// rejection, cause on Health, queries byte-identical to the acked
// prefix) and the backoff probe must restore writable service without
// a restart; the full history then lands and survives a reopen.
func TestDegradedModeAndProbeRecovery(t *testing.T) {
	base, ops, routes := crashWorkload(77)
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 77)
	x, err := OpenLiveShardedIndex(faultWALOptions(dir, inj), crashPolicy(), crashBootstrap(base))
	if err != nil {
		t.Fatal(err)
	}

	half := len(ops) / 2
	for _, op := range ops[:half] {
		applyOp(t, x, op)
	}

	// Wedge the disk: the next two fsyncs fail (the second hits the
	// probe's first reopen, exercising the backoff path).
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Nth: 1, Times: 2})
	var wedgeErr error
	if ops[half].insert != nil {
		wedgeErr = x.Insert(ops[half].insert)
	} else {
		_, wedgeErr = x.Delete(ops[half].del)
	}
	if !IsDegraded(wedgeErr) {
		t.Fatalf("write over failing fsync: got %v, want ErrDegraded", wedgeErr)
	}
	if !x.Degraded() {
		t.Fatal("index not degraded after wedge")
	}
	h := x.Health()
	assertMonotone(t, h)
	if h.Entries != 1 || h.Cause == "" {
		t.Fatalf("degraded health %+v", h)
	}

	// Degraded queries serve the last published epochs: byte-identical
	// to a fresh build of a history prefix containing every acked write
	// (the wedged op may or may not be applied in memory).
	n := matchPrefix(base, ops, corpusOf(t, x))
	if n < half || n > half+1 {
		t.Fatalf("degraded corpus matches prefix %d, want %d or %d", n, half, half+1)
	}
	assertSameAnswers(t, x, freshBuild(t, base, ops, n), routes)

	// The probe recovers on its own once the injected faults are spent.
	waitHealthy(t, x, 20*time.Second)
	h = x.Health()
	assertMonotone(t, h)
	if h.Entries != 1 || h.Exits != 1 {
		t.Fatalf("post-recovery transitions %+v", h)
	}
	if h.Probes == 0 || h.Recoveries != 1 {
		t.Fatalf("probe counters %+v", h)
	}

	// The rest of the history lands (the wedged op retried first).
	for _, op := range ops[half:] {
		applyOp(t, x, op)
	}
	if got := matchPrefix(base, ops, corpusOf(t, x)); got != len(ops) {
		t.Fatalf("final corpus matches prefix %d, want full history %d", got, len(ops))
	}
	assertSameAnswers(t, x, freshBuild(t, base, ops, len(ops)), routes)
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything acked survived the wedge→recover cycle.
	inj.Heal()
	x2, err := OpenLiveShardedIndex(faultWALOptions(dir, inj), crashPolicy(), func() (*LiveShardedIndex, error) {
		return nil, fmt.Errorf("bootstrap must not run on reopen")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer x2.Close()
	if got := matchPrefix(base, ops, corpusOf(t, x2)); got != len(ops) {
		t.Fatalf("reopened corpus matches prefix %d, want %d", got, len(ops))
	}
	assertSameAnswers(t, x2, freshBuild(t, base, ops, len(ops)), routes)
}

// TestDegradedCheckpointFailure: a failed checkpoint (rename fault)
// must degrade the index — truncation stalled, durability no longer
// advancing — and the probe's retried checkpoint must recover it.
func TestDegradedCheckpointFailure(t *testing.T) {
	base, ops, _ := crashWorkload(78)
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil, 78)
	x, err := OpenLiveShardedIndex(faultWALOptions(dir, inj), crashPolicy(), crashBootstrap(base))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, op := range ops[:200] {
		applyOp(t, x, op)
	}
	inj.Add(faultfs.Rule{Op: faultfs.OpRename, Nth: 1})
	if err := x.Checkpoint(); err == nil {
		t.Fatal("checkpoint over failing rename succeeded")
	}
	if !x.Degraded() {
		t.Fatal("failed checkpoint did not degrade the index")
	}
	if err := x.Insert(ops[200].insert); !IsDegraded(err) {
		// ops[200] may be a delete; only assert when it's an insert.
		if ops[200].insert != nil {
			t.Fatalf("degraded write: got %v", err)
		}
	}
	waitHealthy(t, x, 20*time.Second)
	for _, op := range ops[200:300] {
		applyOp(t, x, op)
	}
	if got := matchPrefix(base, ops, corpusOf(t, x)); got != 300 {
		t.Fatalf("corpus matches prefix %d, want 300", got)
	}
	assertMonotone(t, x.Health())
}

// TestChaosFaultSchedules is the randomized arm: seeded-random fault
// schedules (fsync errors, torn writes, ENOSPC, failed rotations and
// checkpoint renames, injected latency) land while the scripted history
// applies with concurrent readers hammering queries. Every wedge must
// recover via the probe, every op must eventually ack exactly once, the
// final corpus must be byte-identical to a fresh build of the full
// history — and the wedge→recover cycles must not leak goroutines.
func TestChaosFaultSchedules(t *testing.T) {
	baselineGoroutines := runtime.NumGoroutine()
	rounds := walStressN(3)
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprint("round", round), func(t *testing.T) {
			seed := int64(9000 + 13*round)
			base, ops, routes := crashWorkload(seed)
			rng := rand.New(rand.NewSource(seed + 5))
			dir := t.TempDir()
			inj := faultfs.NewInjector(nil, seed)
			x, err := OpenLiveShardedIndex(faultWALOptions(dir, inj), crashPolicy(), crashBootstrap(base))
			if err != nil {
				t.Fatal(err)
			}

			// Concurrent readers: every answer must come from some
			// published epoch — never a torn state — while faults land.
			stopReaders := make(chan struct{})
			readerErr := make(chan error, 1)
			go func() {
				q := Query{Scenario: Binary, Psi: DefaultPsi}
				for {
					select {
					case <-stopReaders:
						readerErr <- nil
						return
					default:
					}
					if _, err := x.ServiceValues(routes[:4], q, 2); err != nil {
						readerErr <- fmt.Errorf("reader: %w", err)
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}()

			// The fault schedule: a handful of events at random points in
			// the history, drawn from every fault class the injector
			// supports. Times>1 makes some faults outlive the wedge into
			// the probe's first recovery attempts (backoff under fire).
			faults := []faultfs.Rule{
				{Op: faultfs.OpSync, Nth: 1, Times: 1 + rng.Intn(3)},
				{Op: faultfs.OpWrite, Nth: 1, Fault: faultfs.Fault{ShortWrite: true}},
				{Op: faultfs.OpWrite, Nth: 1, Fault: faultfs.Fault{Err: faultfs.ErrNoSpace}},
				{Op: faultfs.OpCreate, Nth: 1, Times: 1 + rng.Intn(2)},
				{Op: faultfs.OpRename, Nth: 1},
				{Op: faultfs.OpSyncDir, Nth: 1},
				{Op: faultfs.OpSync, Nth: 1, Fault: faultfs.Fault{Latency: time.Millisecond}},
			}
			events := map[int]faultfs.Rule{}
			for i := 0; i < 4; i++ {
				events[rng.Intn(len(ops))] = faults[rng.Intn(len(faults))]
			}

			wedges := 0
			for i, op := range ops {
				if rule, hit := events[i]; hit {
					inj.Add(rule)
					wedges++
				}
				applyOp(t, x, op)
				// An occasional explicit checkpoint mid-row, so rename/
				// syncdir faults have a durable-path victim to hit.
				if i%400 == 399 {
					if err := x.Checkpoint(); err != nil && !x.Degraded() {
						t.Fatalf("checkpoint failed without degrading: %v", err)
					}
					waitHealthy(t, x, 20*time.Second)
				}
				if i%500 == 0 {
					assertMonotone(t, x.Health())
				}
			}
			waitHealthy(t, x, 20*time.Second)
			close(stopReaders)
			if err := <-readerErr; err != nil {
				t.Fatal(err)
			}

			h := x.Health()
			assertMonotone(t, h)
			if h.Entries != h.Exits {
				t.Fatalf("unbalanced transitions after recovery: %+v", h)
			}
			if got := matchPrefix(base, ops, corpusOf(t, x)); got != len(ops) {
				t.Fatalf("final corpus matches prefix %d, want %d (health %+v, injected %d)",
					got, len(ops), h, inj.Injected())
			}
			assertSameAnswers(t, x, freshBuild(t, base, ops, len(ops)), routes)
			if err := x.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen with a clean disk: the acked history survived every
			// injected fault (un-acked writes were checkpointed or never
			// applied — either way the corpus is exactly the full history).
			x2, err := OpenLiveShardedIndex(crashWALOptions(dir), crashPolicy(), func() (*LiveShardedIndex, error) {
				return nil, fmt.Errorf("bootstrap must not run on reopen")
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := matchPrefix(base, ops, corpusOf(t, x2)); got != len(ops) {
				t.Fatalf("reopened corpus matches prefix %d, want %d", got, len(ops))
			}
			x2.Close()
		})
	}

	// No goroutine leaks across all wedge→recover cycles: probes exit on
	// recovery or Close, readers and sync tickers are joined.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baselineGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak across wedge→recover cycles: %d -> %d\n%s",
				baselineGoroutines, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedTenantIsolation: a fault schedule scoped to one tenant's
// directory must degrade that tenant alone — the co-tenant keeps
// accepting writes with zero degraded transitions — and the faulted
// tenant's own probe recovers it without touching the healthy one.
func TestDegradedTenantIsolation(t *testing.T) {
	root := t.TempDir()
	inj := faultfs.NewInjector(nil, 55)
	wopts := faultWALOptions("", inj) // Dir ignored by the registry
	reg, err := OpenTenantRegistry(TenantRegistryOptions{
		Root:        root,
		WAL:         wopts,
		Policy:      crashPolicy(),
		Shards:      2,
		Partitioner: HashPartitioner(),
		Index:       IndexOptions{Ordering: ZOrdering},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	city := NewYorkCity()
	users := TaxiTrips(city, 400, 56)
	write := func(id string, u *Trajectory) error {
		idx, release, err := reg.Acquire(id, true)
		if err != nil {
			return err
		}
		defer release()
		return idx.Insert(u)
	}
	for i := 0; i < 50; i++ {
		if err := write("alpha", users[i]); err != nil {
			t.Fatal(err)
		}
		if err := write("beta", users[100+i]); err != nil {
			t.Fatal(err)
		}
	}

	// Wedge only alpha's disk: every rule is scoped to its subtree.
	alphaDir := filepath.Join(root, "alpha") + string(filepath.Separator)
	inj.Add(faultfs.Rule{Op: faultfs.OpSync, Path: alphaDir, Nth: 1, Times: 2})
	if err := write("alpha", users[50]); !IsDegraded(err) {
		t.Fatalf("alpha write over failing fsync: got %v", err)
	}
	deg := reg.Degraded()
	if _, ok := deg["alpha"]; !ok || len(deg) != 1 {
		t.Fatalf("Degraded() = %v, want exactly alpha", deg)
	}

	// Beta is untouched while alpha is down: writes ack, zero degraded
	// transitions ever recorded.
	for i := 50; i < 80; i++ {
		if err := write("beta", users[100+i]); err != nil {
			t.Fatalf("healthy co-tenant write failed during alpha's wedge: %v", err)
		}
	}
	bh, err := reg.Health("beta")
	if err != nil {
		t.Fatal(err)
	}
	if bh.Degraded || bh.Entries != 0 {
		t.Fatalf("beta health %+v, want pristine", bh)
	}

	// Alpha's probe recovers alpha on its own.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ah, err := reg.Health("alpha")
		if err != nil {
			t.Fatal(err)
		}
		if !ah.Degraded {
			if ah.Recoveries == 0 {
				t.Fatalf("alpha recovered without a probe recovery: %+v", ah)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alpha probe did not recover: %+v", ah)
		}
		time.Sleep(time.Millisecond)
	}
	if err := write("alpha", users[51]); err != nil {
		t.Fatalf("alpha write after recovery: %v", err)
	}
	if deg := reg.Degraded(); len(deg) != 0 {
		t.Fatalf("Degraded() after recovery = %v", deg)
	}
}
