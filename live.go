package trajcover

// The live serving path. A LiveIndex (or LiveShardedIndex) serves every
// query from an immutable, atomically-swappable epoch — a frozen
// columnar base index plus a small delta overlay and tombstone set —
// while Insert/Delete land in the overlay and a background rebuild
// periodically folds the overlay into a fresh frozen base and swaps it
// in per shard. The result is the guarantee the mutable Index cannot
// give: Insert and Delete are safe concurrently with every query
// method, queries synchronize with writers only for the epoch-set
// capture (never during execution, never with a rebuild), and read
// performance does not decay with churn (the overlay is bounded by the
// compaction policy; the base never degrades the way repeated
// Tree.Insert does).
//
// Use the mutable Index for build-then-query workloads and coverage
// solvers (MaxCoverage), the FrozenIndex for static read-only serving,
// and the live types whenever writes and reads overlap.

import (
	"context"
	"errors"

	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/shard"
)

// ErrImmutable marks an index that cannot accept the attempted write:
// it was restored from a snapshot recorded with a partitioner this
// build does not know, so inserts cannot be routed consistently with
// the recorded partition. Test with errors.Is.
var ErrImmutable = shard.ErrImmutable

// IsImmutable reports whether err means the index rejects writes
// because no usable partitioner survived restore.
func IsImmutable(err error) bool { return errors.Is(err, ErrImmutable) }

// ErrDuplicateID rejects an Insert whose ID is already in the logical
// corpus. Typed so callers can tell a client mistake from a durability
// failure. Test with errors.Is.
var ErrDuplicateID = shard.ErrDuplicateID

// LivePolicy tunes when a live index folds a shard's pending churn
// (delta overlay + tombstones) into a fresh frozen base. The zero value
// rebuilds a shard in the background once 4096 writes are pending or
// the pending churn reaches 25% of the shard's base corpus.
type LivePolicy struct {
	// MaxDelta triggers a background rebuild at this many pending
	// writes per shard (0 means 4096).
	MaxDelta int
	// MaxDeltaFraction triggers when pending churn reaches this
	// fraction of the shard's base corpus (0 means 0.25; negative
	// disables the fraction trigger).
	MaxDeltaFraction float64
	// RebuildParallelism bounds the goroutines a background rebuild may
	// use (0 means 1, leaving the cores to the serving path).
	RebuildParallelism int
	// Manual disables automatic rebuilds; only Compact folds churn.
	Manual bool
}

func (p LivePolicy) policy() shard.Policy {
	return shard.Policy{
		MaxDelta:           p.MaxDelta,
		MaxDeltaFraction:   p.MaxDeltaFraction,
		RebuildParallelism: p.RebuildParallelism,
		Manual:             p.Manual,
	}
}

// LiveShardStats is one shard's live-serving state.
type LiveShardStats = shard.ShardStats

// LiveIndex is a single-shard live index: queries always run against an
// immutable epoch while Insert/Delete are accepted concurrently and a
// background rebuild keeps the epoch compact. Answers equal a
// from-scratch Index over the same logical corpus (exactly for integral
// scenarios such as Binary; up to float summation order otherwise).
type LiveIndex struct {
	s *shard.Live
}

// LiveIndexOptions configures NewLiveIndex.
type LiveIndexOptions struct {
	// Index configures the base tree (and every rebuild).
	Index IndexOptions
	// Policy tunes background compaction.
	Policy LivePolicy
}

// NewLiveIndex builds a live single-shard index over the given users.
func NewLiveIndex(users []*Trajectory, opts LiveIndexOptions) (*LiveIndex, error) {
	sopts := ShardOptions{Shards: 1, Partitioner: HashPartitioner(), Index: opts.Index}
	s, err := shard.BuildLive(users, sopts.shardOptions(), opts.Policy.policy())
	if err != nil {
		return nil, err
	}
	return &LiveIndex{s: s}, nil
}

// Live converts a built Index into its live serving form: the tree is
// frozen into the first epoch's base and the index accepts concurrent
// writes from then on. The source index is only read and remains usable.
func (x *Index) Live(pol LivePolicy) (*LiveIndex, error) {
	f, err := x.Freeze()
	if err != nil {
		return nil, err
	}
	return f.Live(pol)
}

// Live converts a frozen index into its live serving form — the restore
// path that makes a read-only snapshot mutable again: the frozen
// columns become the first epoch's base with an empty overlay.
func (x *FrozenIndex) Live(pol LivePolicy) (*LiveIndex, error) {
	s, err := x.liveCore(pol)
	if err != nil {
		return nil, err
	}
	return &LiveIndex{s: s}, nil
}

func (x *FrozenIndex) liveCore(pol LivePolicy) (*shard.Live, error) {
	sf, err := shard.FrozenFromEngines([]*query.FrozenEngine{x.engine}, x.engine.Frozen().Bounds(), shard.Hash{}.Kind())
	if err != nil {
		return nil, err
	}
	return sf.Live(pol.policy())
}

// Len returns the logical corpus size (base minus deletes plus the
// delta overlay).
func (x *LiveIndex) Len() int { return x.s.Len() }

// Insert adds a user trajectory. Safe concurrently with every query
// method and with other writes; duplicate IDs are rejected.
func (x *LiveIndex) Insert(u *Trajectory) error { return x.s.Insert(u) }

// Delete removes the trajectory with the given id, reporting whether it
// was present. Safe concurrently with every query method. The error is
// always nil without a WAL; with one attached it reports a durability
// failure (the delete was not acknowledged).
func (x *LiveIndex) Delete(id ID) (bool, error) { return x.s.Delete(id) }

// Compact synchronously folds all pending writes into a fresh frozen
// base. Queries and writes proceed during the fold; only the final
// pointer swap synchronizes with writers.
func (x *LiveIndex) Compact() error { return x.s.Compact() }

// Stats returns the serving state (pending churn, epoch generation,
// completed compactions).
func (x *LiveIndex) Stats() LiveShardStats { return x.s.Stats()[0] }

// Err returns the most recent background-rebuild error, or nil.
func (x *LiveIndex) Err() error { return x.s.Err() }

// Version returns the monotone write-version counter; see
// LiveShardedIndex.Version.
func (x *LiveIndex) Version() uint64 { return x.s.Version() }

// ServiceValue computes SO(U, f) over the current epoch (Algorithm 1
// over the frozen base, masked by tombstones, plus the delta overlay).
func (x *LiveIndex) ServiceValue(f *Facility, q Query) (float64, error) {
	v, _, err := x.s.ServiceValue(f, q.params())
	return v, err
}

// ServiceValues computes the exact service value of every facility in
// one batch across a pool of `workers` goroutines (<= 0 uses
// GOMAXPROCS). The whole batch answers over one epoch.
func (x *LiveIndex) ServiceValues(facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValues(facilities, q.params(), workers)
	return vs, err
}

// TopK answers the kMaxRRST query best first over the current epoch.
func (x *LiveIndex) TopK(facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopK(facilities, k, q.params())
	return res, err
}

// TopKWithMetrics is TopK returning work metrics for diagnostics.
func (x *LiveIndex) TopKWithMetrics(facilities []*Facility, k int, q Query) ([]Ranked, QueryMetrics, error) {
	return x.s.TopK(facilities, k, q.params())
}

// TopKParallel is TopK with up to `workers` facility relaxations run
// concurrently per round; the answer is identical to TopK.
func (x *LiveIndex) TopKParallel(facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallel(facilities, k, q.params(), workers)
	return res, err
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation; see
// the deadline-aware variants note on Index. The whole batch still
// answers over one write-consistent epoch capture.
func (x *LiveIndex) ServiceValuesCtx(ctx context.Context, facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValuesCtx(ctx, facilities, q.params(), workers)
	return vs, err
}

// TopKCtx is TopK with cooperative cancellation; see the deadline-aware
// variants note on Index.
func (x *LiveIndex) TopKCtx(ctx context.Context, facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopKCtx(ctx, facilities, k, q.params())
	return res, err
}

// TopKParallelCtx is TopKParallel with cooperative cancellation; see the
// deadline-aware variants note on Index.
func (x *LiveIndex) TopKParallelCtx(ctx context.Context, facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallelCtx(ctx, facilities, k, q.params(), workers)
	return res, err
}

// LiveShardedIndex is the live serving form of a ShardedIndex: every
// shard serves from an atomically-swappable epoch, writes route to
// their shard's delta overlay, and background rebuilds fold one shard
// at a time while the others keep serving. Queries use the same
// scatter-gather merge as ShardedIndex/FrozenShardedIndex over a
// consistent per-shard epoch capture.
type LiveShardedIndex struct {
	s *shard.Live

	// wal holds the durability state when the index was opened with
	// OpenLiveShardedIndex; nil for purely in-memory indexes. See
	// live_wal.go.
	wal *liveWAL
}

// LiveShardOptions configures NewLiveShardedIndex.
type LiveShardOptions struct {
	// Shards is the number of epoch-serving shards (0 means 1).
	Shards int
	// Partitioner assigns trajectories to shards (nil means
	// HashPartitioner()).
	Partitioner Partitioner
	// Index configures every shard's base tree (and every rebuild).
	Index IndexOptions
	// Policy tunes background compaction.
	Policy LivePolicy
}

// NewLiveShardedIndex partitions users and builds one frozen-epoch
// shard per partition.
func NewLiveShardedIndex(users []*Trajectory, opts LiveShardOptions) (*LiveShardedIndex, error) {
	sopts := ShardOptions{Shards: opts.Shards, Partitioner: opts.Partitioner, Index: opts.Index}
	s, err := shard.BuildLive(users, sopts.shardOptions(), opts.Policy.policy())
	if err != nil {
		return nil, err
	}
	return &LiveShardedIndex{s: s}, nil
}

// Live converts a built (or snapshot-restored) ShardedIndex into its
// live serving form: every shard's tree is frozen into its first
// epoch's base. An index restored with an unknown custom partitioner
// converts too — it serves queries and Deletes, and Insert returns
// ErrImmutable because new writes cannot be routed.
func (x *ShardedIndex) Live(pol LivePolicy) (*LiveShardedIndex, error) {
	s, err := x.s.Live(pol.policy())
	if err != nil {
		return nil, err
	}
	return &LiveShardedIndex{s: s}, nil
}

// Live converts a frozen sharded index into its live serving form — the
// restore path that makes a read-only sharded snapshot mutable again.
func (x *FrozenShardedIndex) Live(pol LivePolicy) (*LiveShardedIndex, error) {
	s, err := x.s.Live(pol.policy())
	if err != nil {
		return nil, err
	}
	return &LiveShardedIndex{s: s}, nil
}

// NumShards returns the number of shards.
func (x *LiveShardedIndex) NumShards() int { return x.s.NumShards() }

// ShardSizes returns each shard's logical corpus size.
func (x *LiveShardedIndex) ShardSizes() []int { return x.s.Sizes() }

// Len returns the total logical corpus size.
func (x *LiveShardedIndex) Len() int { return x.s.Len() }

// Insert routes a user trajectory to its shard's delta overlay. Safe
// concurrently with every query method and with other writes. Indexes
// restored with an unknown partitioner return ErrImmutable.
func (x *LiveShardedIndex) Insert(u *Trajectory) error { return x.s.Insert(u) }

// Delete removes the trajectory with the given id from whichever shard
// holds it, reporting whether it was present. Safe concurrently with
// every query method — and works even when Insert is ErrImmutable,
// because deletion routes by ID lookup, not by partitioner. The error
// is always nil without a WAL; with one attached it reports a
// durability failure (the delete was not acknowledged).
func (x *LiveShardedIndex) Delete(id ID) (bool, error) { return x.s.Delete(id) }

// Compact synchronously folds every shard's pending writes into fresh
// frozen bases, one shard at a time.
func (x *LiveShardedIndex) Compact() error { return x.s.Compact() }

// Stats returns per-shard serving state.
func (x *LiveShardedIndex) Stats() []LiveShardStats { return x.s.Stats() }

// Version returns a monotone counter that increases after every
// acknowledged write and every background rebuild swap. Two equal
// reads bracketing a query prove the answer reflects the current
// corpus — the key for epoch-keyed result caching.
func (x *LiveShardedIndex) Version() uint64 { return x.s.Version() }

// Err returns the most recent background-rebuild error, or nil.
func (x *LiveShardedIndex) Err() error { return x.s.Err() }

// ServiceValue computes SO(U, f) as the sum of per-shard epoch service
// values.
func (x *LiveShardedIndex) ServiceValue(f *Facility, q Query) (float64, error) {
	v, _, err := x.s.ServiceValue(f, q.params())
	return v, err
}

// ServiceValues computes the exact service value of every facility,
// scattering each shard's batch across `workers` goroutines.
func (x *LiveShardedIndex) ServiceValues(facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValues(facilities, q.params(), workers)
	return vs, err
}

// TopK answers kMaxRRST over all live shards by scatter-gather, best
// first, over a consistent per-shard epoch capture.
func (x *LiveShardedIndex) TopK(facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopK(facilities, k, q.params())
	return res, err
}

// TopKWithMetrics is TopK returning the merged per-shard work metrics.
func (x *LiveShardedIndex) TopKWithMetrics(facilities []*Facility, k int, q Query) ([]Ranked, QueryMetrics, error) {
	return x.s.TopK(facilities, k, q.params())
}

// TopKParallel is TopK with up to `workers` facility relaxations run
// concurrently per round; the answer is identical to TopK.
func (x *LiveShardedIndex) TopKParallel(facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallel(facilities, k, q.params(), workers)
	return res, err
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation; see
// the deadline-aware variants note on Index. The whole batch still
// answers over one write-consistent epoch capture.
func (x *LiveShardedIndex) ServiceValuesCtx(ctx context.Context, facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValuesCtx(ctx, facilities, q.params(), workers)
	return vs, err
}

// TopKCtx is TopK with cooperative cancellation; see the deadline-aware
// variants note on Index.
func (x *LiveShardedIndex) TopKCtx(ctx context.Context, facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopKCtx(ctx, facilities, k, q.params())
	return res, err
}

// TopKParallelCtx is TopKParallel with cooperative cancellation; see the
// deadline-aware variants note on Index.
func (x *LiveShardedIndex) TopKParallelCtx(ctx context.Context, facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallelCtx(ctx, facilities, k, q.params(), workers)
	return res, err
}

// UpperBoundsCtx seeds (without exploring) every facility's search over
// one write-consistent epoch capture and returns the initial upper
// bounds, indexed like facilities — each a sound overestimate of the
// facility's exact service value, computed in one tree descent per
// shard. The distributed query frontend scatters this before deciding
// which facilities are worth an exact evaluation on which backend.
func (x *LiveShardedIndex) UpperBoundsCtx(ctx context.Context, facilities []*Facility, q Query) ([]float64, error) {
	return x.s.UpperBounds(ctx, facilities, q.params())
}

// epochs exposes the current per-shard epoch capture to the snapshot
// writer.
func (x *LiveShardedIndex) epochs() []*query.Epoch { return x.s.Epochs() }

func (x *LiveIndex) epochs() []*query.Epoch { return x.s.Epochs() }
