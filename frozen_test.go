package trajcover

import (
	"math"
	"testing"
)

// frozenCase is one (dataset, variant) equivalence configuration. The
// scenarios listed are the ones the variant answers exactly over that
// dataset (a TwoPoint tree over multipoint data answers Binary only).
type frozenCase struct {
	name      string
	users     []*Trajectory
	variant   Variant
	scenarios []Scenario
}

func frozenCases(t testing.TB) []frozenCase {
	t.Helper()
	ny := NewYorkCity()
	trips := TaxiTrips(ny, 1500, 7)
	checkins := Checkins(ny, 900, 4, 8)
	return []frozenCase{
		{"twopoint/trips", trips, TwoPoint, []Scenario{Binary, PointCount, Length}},
		{"twopoint/checkins", checkins, TwoPoint, []Scenario{Binary}},
		{"segmented/checkins", checkins, Segmented, []Scenario{Binary, PointCount, Length}},
		{"full/checkins", checkins, FullTrajectory, []Scenario{Binary, PointCount, Length}},
	}
}

// TestFrozenEquivalence proves the frozen columnar index answers
// ServiceValues and TopK bit-identically to the pointer tree it was
// frozen from, across all variants, both orderings, and every scenario
// the variant supports — including identical work metrics, because both
// layouts run the same search in the same order.
func TestFrozenEquivalence(t *testing.T) {
	routes := BusRoutes(NewYorkCity(), 48, 12, 3)
	const k = 6
	for _, tc := range frozenCases(t) {
		for _, ord := range []Ordering{BasicOrdering, ZOrdering} {
			name := tc.name + "/" + ord.String()
			t.Run(name, func(t *testing.T) {
				idx, err := NewIndex(tc.users, IndexOptions{Variant: tc.variant, Ordering: ord})
				if err != nil {
					t.Fatal(err)
				}
				fz, err := idx.Freeze()
				if err != nil {
					t.Fatal(err)
				}
				if fz.Len() != idx.Len() {
					t.Fatalf("frozen Len %d, index Len %d", fz.Len(), idx.Len())
				}
				for _, sc := range tc.scenarios {
					q := Query{Scenario: sc, Psi: DefaultPsi}

					want, err := idx.ServiceValues(routes, q, 1)
					if err != nil {
						t.Fatal(err)
					}
					got, err := fz.ServiceValues(routes, q, 1)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
							t.Fatalf("%v ServiceValues[%d]: pointer %v, frozen %v", sc, i, want[i], got[i])
						}
					}
					// The concurrent batch must agree with the serial one.
					got3, err := fz.ServiceValues(routes, q, 3)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if math.Float64bits(want[i]) != math.Float64bits(got3[i]) {
							t.Fatalf("%v ServiceValues[%d] (3 workers): pointer %v, frozen %v", sc, i, want[i], got3[i])
						}
					}

					wantTop, wantM, err := idx.TopKWithMetrics(routes, k, q)
					if err != nil {
						t.Fatal(err)
					}
					gotTop, gotM, err := fz.TopKWithMetrics(routes, k, q)
					if err != nil {
						t.Fatal(err)
					}
					compareRanked(t, sc, wantTop, gotTop)
					if wantM != gotM {
						t.Fatalf("%v TopK metrics: pointer %+v, frozen %+v", sc, wantM, gotM)
					}

					gotPar, err := fz.TopKParallel(routes, k, q, 4)
					if err != nil {
						t.Fatal(err)
					}
					compareRanked(t, sc, wantTop, gotPar)
				}
			})
		}
	}
}

func compareRanked(t *testing.T, sc Scenario, want, got []Ranked) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%v TopK: pointer returned %d results, frozen %d", sc, len(want), len(got))
	}
	for i := range want {
		if want[i].Facility.ID != got[i].Facility.ID {
			t.Fatalf("%v TopK[%d]: pointer facility %d, frozen %d", sc, i, want[i].Facility.ID, got[i].Facility.ID)
		}
		if math.Float64bits(want[i].Service) != math.Float64bits(got[i].Service) {
			t.Fatalf("%v TopK[%d]: pointer service %v, frozen %v", sc, i, want[i].Service, got[i].Service)
		}
	}
}

// TestFrozenShardedEquivalence proves the frozen sharded scatter-gather
// answers match the mutable sharded index (and through it, the single
// tree) for TopK and ServiceValues under Binary — the integral scenario
// where sharded answers are exact, across shard counts and partitioners.
func TestFrozenShardedEquivalence(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 2000, 11)
	routes := BusRoutes(ny, 40, 10, 5)
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	const k = 5
	for _, shards := range []int{1, 2, 4} {
		for _, part := range []struct {
			name string
			p    Partitioner
		}{{"hash", HashPartitioner()}, {"grid", GridPartitioner()}} {
			t.Run(part.name+"/"+string(rune('0'+shards)), func(t *testing.T) {
				sidx, err := NewShardedIndex(users, ShardOptions{
					Shards: shards, Partitioner: part.p,
					Index: IndexOptions{Ordering: ZOrdering},
				})
				if err != nil {
					t.Fatal(err)
				}
				fz, err := sidx.Freeze()
				if err != nil {
					t.Fatal(err)
				}
				if fz.NumShards() != sidx.NumShards() || fz.Len() != sidx.Len() {
					t.Fatalf("frozen shards/len %d/%d, source %d/%d",
						fz.NumShards(), fz.Len(), sidx.NumShards(), sidx.Len())
				}

				want, err := sidx.TopK(routes, k, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := fz.TopK(routes, k, q)
				if err != nil {
					t.Fatal(err)
				}
				compareRanked(t, q.Scenario, want, got)

				gotPar, err := fz.TopKParallel(routes, k, q, 4)
				if err != nil {
					t.Fatal(err)
				}
				compareRanked(t, q.Scenario, want, gotPar)

				wantVs, err := sidx.ServiceValues(routes, q, 2)
				if err != nil {
					t.Fatal(err)
				}
				gotVs, err := fz.ServiceValues(routes, q, 2)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantVs {
					if math.Float64bits(wantVs[i]) != math.Float64bits(gotVs[i]) {
						t.Fatalf("ServiceValues[%d]: sharded %v, frozen sharded %v", i, wantVs[i], gotVs[i])
					}
				}
			})
		}
	}
}

// TestNewFrozenIndex checks the direct build path agrees with
// build-then-freeze.
func TestNewFrozenIndex(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 800, 13)
	routes := BusRoutes(ny, 16, 8, 17)
	q := Query{Scenario: Binary, Psi: DefaultPsi}

	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewFrozenIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.TopK(routes, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := direct.TopK(routes, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	compareRanked(t, q.Scenario, want, got)
}

// TestFrozenRejectsUnsupportedScenario mirrors the pointer tree's
// scenario validation on the frozen path.
func TestFrozenRejectsUnsupportedScenario(t *testing.T) {
	ny := NewYorkCity()
	users := Checkins(ny, 200, 5, 19)
	routes := BusRoutes(ny, 4, 6, 23)
	fz, err := NewFrozenIndex(users, IndexOptions{Variant: TwoPoint, Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fz.TopK(routes, 2, Query{Scenario: PointCount, Psi: DefaultPsi}); err == nil {
		t.Fatal("expected scenario error for TwoPoint over multipoint data")
	}
	if _, err := fz.ServiceValue(routes[0], Query{Scenario: Length, Psi: DefaultPsi}); err == nil {
		t.Fatal("expected scenario error for TwoPoint over multipoint data")
	}
}
