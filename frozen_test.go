package trajcover

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// frozenCase is one (dataset, variant) equivalence configuration. The
// scenarios listed are the ones the variant answers exactly over that
// dataset (a TwoPoint tree over multipoint data answers Binary only).
type frozenCase struct {
	name      string
	users     []*Trajectory
	variant   Variant
	scenarios []Scenario
}

func frozenCases(t testing.TB) []frozenCase {
	t.Helper()
	ny := NewYorkCity()
	trips := TaxiTrips(ny, 1500, 7)
	checkins := Checkins(ny, 900, 4, 8)
	return []frozenCase{
		{"twopoint/trips", trips, TwoPoint, []Scenario{Binary, PointCount, Length}},
		{"twopoint/checkins", checkins, TwoPoint, []Scenario{Binary}},
		{"segmented/checkins", checkins, Segmented, []Scenario{Binary, PointCount, Length}},
		{"full/checkins", checkins, FullTrajectory, []Scenario{Binary, PointCount, Length}},
	}
}

// TestFrozenEquivalence proves the frozen columnar index answers
// ServiceValues and TopK bit-identically to the pointer tree it was
// frozen from, across all variants, both orderings, and every scenario
// the variant supports — including identical work metrics, because both
// layouts run the same search in the same order.
func TestFrozenEquivalence(t *testing.T) {
	routes := BusRoutes(NewYorkCity(), 48, 12, 3)
	const k = 6
	for _, tc := range frozenCases(t) {
		for _, ord := range []Ordering{BasicOrdering, ZOrdering} {
			name := tc.name + "/" + ord.String()
			t.Run(name, func(t *testing.T) {
				idx, err := NewIndex(tc.users, IndexOptions{Variant: tc.variant, Ordering: ord})
				if err != nil {
					t.Fatal(err)
				}
				fz, err := idx.Freeze()
				if err != nil {
					t.Fatal(err)
				}
				if fz.Len() != idx.Len() {
					t.Fatalf("frozen Len %d, index Len %d", fz.Len(), idx.Len())
				}
				for _, sc := range tc.scenarios {
					q := Query{Scenario: sc, Psi: DefaultPsi}

					want, err := idx.ServiceValues(routes, q, 1)
					if err != nil {
						t.Fatal(err)
					}
					got, err := fz.ServiceValues(routes, q, 1)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
							t.Fatalf("%v ServiceValues[%d]: pointer %v, frozen %v", sc, i, want[i], got[i])
						}
					}
					// The concurrent batch must agree with the serial one.
					got3, err := fz.ServiceValues(routes, q, 3)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if math.Float64bits(want[i]) != math.Float64bits(got3[i]) {
							t.Fatalf("%v ServiceValues[%d] (3 workers): pointer %v, frozen %v", sc, i, want[i], got3[i])
						}
					}

					wantTop, wantM, err := idx.TopKWithMetrics(routes, k, q)
					if err != nil {
						t.Fatal(err)
					}
					gotTop, gotM, err := fz.TopKWithMetrics(routes, k, q)
					if err != nil {
						t.Fatal(err)
					}
					compareRanked(t, sc, wantTop, gotTop)
					if wantM != gotM {
						t.Fatalf("%v TopK metrics: pointer %+v, frozen %+v", sc, wantM, gotM)
					}

					gotPar, err := fz.TopKParallel(routes, k, q, 4)
					if err != nil {
						t.Fatal(err)
					}
					compareRanked(t, sc, wantTop, gotPar)
				}
			})
		}
	}
}

func compareRanked(t *testing.T, sc Scenario, want, got []Ranked) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%v TopK: pointer returned %d results, frozen %d", sc, len(want), len(got))
	}
	for i := range want {
		if want[i].Facility.ID != got[i].Facility.ID {
			t.Fatalf("%v TopK[%d]: pointer facility %d, frozen %d", sc, i, want[i].Facility.ID, got[i].Facility.ID)
		}
		if math.Float64bits(want[i].Service) != math.Float64bits(got[i].Service) {
			t.Fatalf("%v TopK[%d]: pointer service %v, frozen %v", sc, i, want[i].Service, got[i].Service)
		}
	}
}

// TestFrozenShardedEquivalence proves the frozen sharded scatter-gather
// answers match the mutable sharded index (and through it, the single
// tree) for TopK and ServiceValues under Binary — the integral scenario
// where sharded answers are exact, across shard counts and partitioners.
func TestFrozenShardedEquivalence(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 2000, 11)
	routes := BusRoutes(ny, 40, 10, 5)
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	const k = 5
	for _, shards := range []int{1, 2, 4} {
		for _, part := range []struct {
			name string
			p    Partitioner
		}{{"hash", HashPartitioner()}, {"grid", GridPartitioner()}} {
			t.Run(part.name+"/"+string(rune('0'+shards)), func(t *testing.T) {
				sidx, err := NewShardedIndex(users, ShardOptions{
					Shards: shards, Partitioner: part.p,
					Index: IndexOptions{Ordering: ZOrdering},
				})
				if err != nil {
					t.Fatal(err)
				}
				fz, err := sidx.Freeze()
				if err != nil {
					t.Fatal(err)
				}
				if fz.NumShards() != sidx.NumShards() || fz.Len() != sidx.Len() {
					t.Fatalf("frozen shards/len %d/%d, source %d/%d",
						fz.NumShards(), fz.Len(), sidx.NumShards(), sidx.Len())
				}

				want, err := sidx.TopK(routes, k, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := fz.TopK(routes, k, q)
				if err != nil {
					t.Fatal(err)
				}
				compareRanked(t, q.Scenario, want, got)

				gotPar, err := fz.TopKParallel(routes, k, q, 4)
				if err != nil {
					t.Fatal(err)
				}
				compareRanked(t, q.Scenario, want, gotPar)

				wantVs, err := sidx.ServiceValues(routes, q, 2)
				if err != nil {
					t.Fatal(err)
				}
				gotVs, err := fz.ServiceValues(routes, q, 2)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantVs {
					if math.Float64bits(wantVs[i]) != math.Float64bits(gotVs[i]) {
						t.Fatalf("ServiceValues[%d]: sharded %v, frozen sharded %v", i, wantVs[i], gotVs[i])
					}
				}
			})
		}
	}
}

// TestNewFrozenIndex checks the direct build path agrees with
// build-then-freeze.
func TestNewFrozenIndex(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 800, 13)
	routes := BusRoutes(ny, 16, 8, 17)
	q := Query{Scenario: Binary, Psi: DefaultPsi}

	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewFrozenIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	want, err := idx.TopK(routes, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := direct.TopK(routes, 4, q)
	if err != nil {
		t.Fatal(err)
	}
	compareRanked(t, q.Scenario, want, got)
}

// TestFrozenRejectsUnsupportedScenario mirrors the pointer tree's
// scenario validation on the frozen path.
func TestFrozenRejectsUnsupportedScenario(t *testing.T) {
	ny := NewYorkCity()
	users := Checkins(ny, 200, 5, 19)
	routes := BusRoutes(ny, 4, 6, 23)
	fz, err := NewFrozenIndex(users, IndexOptions{Variant: TwoPoint, Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fz.TopK(routes, 2, Query{Scenario: PointCount, Psi: DefaultPsi}); err == nil {
		t.Fatal("expected scenario error for TwoPoint over multipoint data")
	}
	if _, err := fz.ServiceValue(routes[0], Query{Scenario: Length, Psi: DefaultPsi}); err == nil {
		t.Fatal("expected scenario error for TwoPoint over multipoint data")
	}
}

// TestPublicCtxVariantsAcrossIndexTypes pins the promise in the
// deadline-aware variants note on Index: EVERY index type exposes
// ServiceValuesCtx/TopKCtx/TopKParallelCtx, a background context
// changes nothing, and an expired deadline aborts with
// context.DeadlineExceeded.
func TestPublicCtxVariantsAcrossIndexTypes(t *testing.T) {
	ny := NewYorkCity()
	users := TaxiTrips(ny, 1200, 17)
	routes := BusRoutes(ny, 24, 8, 18)
	q := Query{Scenario: Binary, Psi: 300}

	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedIndex(users, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fsh, err := sh.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	lv, err := idx.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	lsh, err := sh.Live(LivePolicy{Manual: true})
	if err != nil {
		t.Fatal(err)
	}

	type ctxAPI struct {
		name string
		sv   func(context.Context, []*Facility, Query, int) ([]float64, error)
		topk func(context.Context, []*Facility, int, Query) ([]Ranked, error)
		par  func(context.Context, []*Facility, int, Query, int) ([]Ranked, error)
	}
	apis := []ctxAPI{
		{"Index", idx.ServiceValuesCtx, idx.TopKCtx, idx.TopKParallelCtx},
		{"FrozenIndex", fz.ServiceValuesCtx, fz.TopKCtx, fz.TopKParallelCtx},
		{"ShardedIndex", sh.ServiceValuesCtx, sh.TopKCtx, sh.TopKParallelCtx},
		{"FrozenShardedIndex", fsh.ServiceValuesCtx, fsh.TopKCtx, fsh.TopKParallelCtx},
		{"LiveIndex", lv.ServiceValuesCtx, lv.TopKCtx, lv.TopKParallelCtx},
		{"LiveShardedIndex", lsh.ServiceValuesCtx, lsh.TopKCtx, lsh.TopKParallelCtx},
	}
	wantV, err := idx.ServiceValues(routes, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantTop, err := idx.TopK(routes, 6, q)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, api := range apis {
		t.Run(api.name, func(t *testing.T) {
			vs, err := api.sv(context.Background(), routes, q, 2)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantV {
				if vs[i] != wantV[i] {
					t.Fatalf("ServiceValuesCtx[%d] = %v, want %v", i, vs[i], wantV[i])
				}
			}
			top, err := api.topk(context.Background(), routes, 6, q)
			if err != nil {
				t.Fatal(err)
			}
			par, err := api.par(context.Background(), routes, 6, q, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantTop {
				if top[i].Facility.ID != wantTop[i].Facility.ID || top[i].Service != wantTop[i].Service {
					t.Fatalf("TopKCtx[%d] = (%d, %v), want (%d, %v)", i,
						top[i].Facility.ID, top[i].Service, wantTop[i].Facility.ID, wantTop[i].Service)
				}
				if par[i] != top[i] {
					t.Fatalf("TopKParallelCtx[%d] differs from TopKCtx", i)
				}
			}
			if _, err := api.sv(expired, routes, q, 2); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("ServiceValuesCtx(expired) err = %v", err)
			}
			if _, err := api.topk(expired, routes, 6, q); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("TopKCtx(expired) err = %v", err)
			}
			if _, err := api.par(expired, routes, 6, q, 3); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("TopKParallelCtx(expired) err = %v", err)
			}
		})
	}
}
