//go:build race

package trajcover

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops items to widen interleaving coverage, so
// allocation-count assertions are not meaningful.
const raceEnabled = true
