package trajcover

// Shutdown goroutine-hygiene coverage for the registry: the LRU
// eviction path (checkpoint + close of idle tenants) racing concurrent
// Bind and Acquire traffic must neither deadlock nor leave index
// goroutines behind once the registry closes.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// awaitGoroutines polls until the goroutine count settles at or below
// baseline plus slack, dumping stacks on timeout.
func awaitGoroutines(t *testing.T, baseline, slack int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTenantRegistryEvictionConcurrentBindNoLeak hammers a MaxOpen=2
// registry with concurrent writers cycling through many durable tenants
// (forcing constant LRU checkpoint-and-evict) while another goroutine
// keeps Bind-ing pinned in-memory tenants. Afterward the registry must
// close cleanly with every tenant's goroutines gone and the pinned
// tenants never evicted.
func TestTenantRegistryEvictionConcurrentBindNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	users, _ := registryWorkload(61)

	opts := testRegistryOptions(t.TempDir())
	opts.MaxOpen = 2
	reg, err := OpenTenantRegistry(opts)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const tenantsPerWriter = 6
	var wg sync.WaitGroup
	errc := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := 0; i < tenantsPerWriter; i++ {
					id := fmt.Sprintf("w%d-t%d", w, i)
					idx, release, err := reg.Acquire(id, true)
					if err != nil {
						errc <- fmt.Errorf("acquire %s: %w", id, err)
						return
					}
					u := users[(w*tenantsPerWriter+i)%len(users)]
					if err := idx.Insert(u); err != nil && !errors.Is(err, ErrDuplicateID) {
						release()
						errc <- fmt.Errorf("insert %s: %w", id, err)
						return
					}
					release()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			idx, err := NewLiveShardedIndex(users[:20], LiveShardOptions{
				Shards:      2,
				Partitioner: HashPartitioner(),
				Index:       IndexOptions{Ordering: ZOrdering},
				Policy:      LivePolicy{Manual: true},
			})
			if err != nil {
				errc <- err
				return
			}
			if err := reg.Bind(fmt.Sprintf("pin%d", i), idx); err != nil {
				errc <- fmt.Errorf("bind pin%d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Pinned tenants are exempt from MaxOpen: all ten must still be
	// open, and only durable tenants were evicted.
	st := reg.Stats()
	if st.Open < 10 {
		t.Fatalf("pinned tenants evicted: %+v", st)
	}
	if st.Evicted == 0 {
		t.Fatalf("MaxOpen=2 under %d tenants evicted nothing: %+v", writers*tenantsPerWriter, st)
	}
	for i := 0; i < 10; i++ {
		if _, release, err := reg.Acquire(fmt.Sprintf("pin%d", i), false); err != nil {
			t.Fatalf("pin%d gone after eviction churn: %v", i, err)
		} else {
			release()
		}
	}

	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	awaitGoroutines(t, baseline, 2, 10*time.Second)
}
