package trajcover

// Two-tenant crash recovery: a child process interleaves scripted write
// histories into two tenants of one TenantRegistry and is SIGKILLed at
// a random point; the parent reopens the registry root and requires
// EACH tenant to recover — independently — to a prefix of its own
// history containing every write the child acknowledged for it,
// answering byte-identical to a fresh build of that prefix. A second,
// deterministic arm corrupts one tenant's WAL tail and requires the
// other tenant's recovery to be completely unaffected: per-tenant WAL
// directories mean one tenant's torn tail can never block another's
// boot.

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

const (
	tenantCrashChildEnv = "TRAJCOVER_TENANT_CRASH_CHILD"
	tenantCrashRootEnv  = "TRAJCOVER_TENANT_CRASH_ROOT"
	tenantCrashSeedEnv  = "TRAJCOVER_TENANT_CRASH_SEED"
	tenantCrashAckEnv   = "TRAJCOVER_TENANT_CRASH_ACK"
)

// tenantCrashIDs are the two victims. Their histories come from
// different seeds, so a cross-tenant WAL mixup cannot match any prefix.
var tenantCrashIDs = [2]string{"red", "blue"}

// tenantCrashWorkload derives tenant i's bootstrap corpus, write
// history, and probe routes — smaller than crashWorkload since two of
// them run interleaved in one child.
func tenantCrashWorkload(seed int64, i int) (base []*Trajectory, ops []crashOp, routes []*Facility) {
	city := NewYorkCity()
	tseed := seed + int64(i)*1000
	users := TaxiTrips(city, 400, tseed)
	routes = BusRoutes(city, 8, 10, tseed+1)
	base = users[:150]
	live := append([]*Trajectory(nil), base...)
	rng := rand.New(rand.NewSource(tseed + 2))
	for _, u := range users[150:] {
		if len(live) > 0 && rng.Float64() < 0.3 {
			j := rng.Intn(len(live))
			ops = append(ops, crashOp{del: live[j].ID})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		ops = append(ops, crashOp{insert: u})
		live = append(live, u)
	}
	return base, ops, routes
}

// tenantCrashRegistryOptions builds the registry both the child and the
// recovering parent use: per-tenant WAL dirs under root, sync=always
// (no acked write may be lost), small segments, and NewTenant seeding
// each tenant's bootstrap corpus from the shared seed.
func tenantCrashRegistryOptions(root string, seed int64) TenantRegistryOptions {
	return TenantRegistryOptions{
		Root:        root,
		WAL:         WALOptions{Sync: WALSyncAlways, SegmentBytes: 1 << 15},
		Policy:      crashPolicy(),
		Shards:      2,
		Partitioner: HashPartitioner(),
		Index:       IndexOptions{Ordering: ZOrdering},
		NewTenant: func(id string) ([]*Trajectory, error) {
			for i, tid := range tenantCrashIDs {
				if id == tid {
					base, _, _ := tenantCrashWorkload(seed, i)
					return base, nil
				}
			}
			return nil, fmt.Errorf("unexpected tenant %q", id)
		},
	}
}

// TestTenantWALCrashChild is the victim: it creates both tenants in one
// registry and interleaves their histories — red, blue, red, blue — so
// a SIGKILL lands mid-append for one tenant while the other has a clean
// tail, acking each tenant's progress to its own file. Skipped unless
// spawned by TestTenantWALCrashRecovery.
func TestTenantWALCrashChild(t *testing.T) {
	if os.Getenv(tenantCrashChildEnv) == "" {
		t.Skip("helper process for TestTenantWALCrashRecovery")
	}
	seed, err := strconv.ParseInt(os.Getenv(tenantCrashSeedEnv), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := OpenTenantRegistry(tenantCrashRegistryOptions(os.Getenv(tenantCrashRootEnv), seed))
	if err != nil {
		t.Fatalf("child open registry: %v", err)
	}
	ackPrefix := os.Getenv(tenantCrashAckEnv)

	var idx [2]*LiveShardedIndex
	var ops [2][]crashOp
	var ack [2]*os.File
	maxOps := 0
	for i, id := range tenantCrashIDs {
		x, release, err := reg.Acquire(id, true)
		if err != nil {
			t.Fatalf("child create %s: %v", id, err)
		}
		defer release()
		idx[i] = x
		_, ops[i], _ = tenantCrashWorkload(seed, i)
		if len(ops[i]) > maxOps {
			maxOps = len(ops[i])
		}
		if ack[i], err = os.Create(ackPrefix + "-" + id); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < maxOps; step++ {
		for i, id := range tenantCrashIDs {
			if step >= len(ops[i]) {
				continue
			}
			op := ops[i][step]
			if op.insert != nil {
				if err := idx[i].Insert(op.insert); err != nil {
					t.Fatalf("child %s insert %d: %v", id, step, err)
				}
			} else if _, err := idx[i].Delete(op.del); err != nil {
				t.Fatalf("child %s delete %d: %v", id, step, err)
			}
			if _, err := fmt.Fprintf(ack[i], "%d\n", step+1); err != nil {
				t.Fatal(err)
			}
			// Checkpoint only red mid-history: kills can land during
			// red's snapshot write + truncation while blue is mid-append
			// with a long un-checkpointed WAL — maximally asymmetric
			// recovery work.
			if i == 0 && step == len(ops[i])/2 {
				if err := idx[i].Checkpoint(); err != nil {
					t.Fatalf("child checkpoint %s: %v", id, err)
				}
			}
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantWALCrashRecovery SIGKILLs the two-tenant child at a random
// point and requires both tenants to recover independently: each to a
// prefix of its own history covering its acked writes, byte-identical
// answers to a fresh build.
func TestTenantWALCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	const seed = 67
	var ops [2][]crashOp
	var routes [2][]*Facility
	var bases [2][]*Trajectory
	total := 0
	for i := range tenantCrashIDs {
		bases[i], ops[i], routes[i] = tenantCrashWorkload(seed, i)
		total += len(ops[i])
	}
	rng := rand.New(rand.NewSource(71))
	for round := 0; round < walStressN(2); round++ {
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			scratch := t.TempDir()
			root := filepath.Join(scratch, "tenants")
			ackPrefix := filepath.Join(scratch, "acked")
			cmd := exec.Command(os.Args[0], "-test.run=^TestTenantWALCrashChild$", "-test.count=1")
			cmd.Env = append(os.Environ(),
				tenantCrashChildEnv+"=1",
				tenantCrashRootEnv+"="+root,
				tenantCrashSeedEnv+"="+strconv.FormatInt(seed, 10),
				tenantCrashAckEnv+"="+ackPrefix,
			)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			ackedNow := func() int {
				sum := 0
				for _, id := range tenantCrashIDs {
					sum += readAcked(t, ackPrefix+"-"+id)
				}
				return sum
			}
			target := rng.Intn(total + total/8)
			done := make(chan struct{})
			go func() { cmd.Wait(); close(done) }()
			deadline := time.Now().Add(60 * time.Second)
		poll:
			for ackedNow() < target {
				if time.Now().After(deadline) {
					t.Errorf("child never reached %d total ops", target)
					break
				}
				select {
				case <-done:
					break poll
				case <-time.After(time.Millisecond):
				}
			}
			cmd.Process.Kill()
			<-done

			// Recover the whole registry; each tenant must come back from
			// its own directory, by itself.
			reg, err := OpenTenantRegistry(tenantCrashRegistryOptions(root, seed))
			if err != nil {
				t.Fatalf("recover registry: %v", err)
			}
			defer reg.Close()
			for i, id := range tenantCrashIDs {
				acked := readAcked(t, ackPrefix+"-"+id)
				if acked == 0 && !dirExists(filepath.Join(root, id)) {
					// Killed before this tenant even existed; nothing to
					// recover and nothing was promised.
					continue
				}
				rec, release, err := reg.Acquire(id, false)
				if err != nil {
					t.Fatalf("tenant %s: recover (acked %d): %v", id, acked, err)
				}
				n := matchPrefix(bases[i], ops[i], corpusOf(t, rec))
				if n < 0 {
					t.Fatalf("tenant %s: recovered corpus matches no prefix of its history (acked %d)", id, acked)
				}
				if n < acked {
					t.Fatalf("tenant %s: recovered prefix %d loses acknowledged writes (acked %d)", id, n, acked)
				}
				t.Logf("tenant %s: acked %d, recovered prefix %d/%d", id, acked, n, len(ops[i]))
				assertSameAnswers(t, rec, freshBuild(t, bases[i], ops[i], n), routes[i])
				release()
			}
		})
	}
}

// TestTenantWALTornTailIndependence is the deterministic half of the
// independence story: with both tenants' crashed WAL state on disk,
// mangle ONE tenant's newest segment. The other tenant must recover its
// complete history exactly as if nothing happened — a corrupt
// co-tenant can fail its own boot, never a neighbour's.
func TestTenantWALTornTailIndependence(t *testing.T) {
	const seed = 73
	root := t.TempDir()
	var ops [2][]crashOp
	var routes [2][]*Facility
	var bases [2][]*Trajectory
	applied := [2]int{}

	reg, err := OpenTenantRegistry(tenantCrashRegistryOptions(root, seed))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range tenantCrashIDs {
		bases[i], ops[i], routes[i] = tenantCrashWorkload(seed, i)
		idx, release, err := reg.Acquire(id, true)
		if err != nil {
			t.Fatal(err)
		}
		n := 120
		if n > len(ops[i]) {
			n = len(ops[i])
		}
		for j, op := range ops[i][:n] {
			if op.insert != nil {
				if err := idx.Insert(op.insert); err != nil {
					t.Fatalf("%s insert %d: %v", id, j, err)
				}
			} else if _, err := idx.Delete(op.del); err != nil {
				t.Fatalf("%s delete %d: %v", id, j, err)
			}
		}
		applied[i] = n
		release()
	}
	// No reg.Close(): with sync=always everything acked is on disk, and
	// abandoning the open registry is exactly the crashed-process state.

	// Mangle red's newest segment: truncate to a torn tail AND flip a
	// byte mid-file, damage a same-process recovery could never see.
	segs, err := filepath.Glob(filepath.Join(root, tenantCrashIDs[0], "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no red segments (err %v)", err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 3 {
		data = data[:len(data)-3]
	}
	if len(data) > 40 {
		data[len(data)/2] ^= 0x10
	}
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2, err := OpenTenantRegistry(tenantCrashRegistryOptions(root, seed))
	if err != nil {
		t.Fatalf("registry open must be lazy — a corrupt tenant cannot fail it: %v", err)
	}
	defer reg2.Close()

	// Blue first: full recovery, full history, exact answers — red's
	// corruption is invisible from blue's directory.
	blue, releaseBlue, err := reg2.Acquire(tenantCrashIDs[1], false)
	if err != nil {
		t.Fatalf("blue recovery blocked by red's torn tail: %v", err)
	}
	if n := matchPrefix(bases[1], ops[1], corpusOf(t, blue)); n != applied[1] {
		t.Fatalf("blue recovered prefix %d, want its full %d ops", n, applied[1])
	}
	assertSameAnswers(t, blue, freshBuild(t, bases[1], ops[1], applied[1]), routes[1])
	releaseBlue()

	// Red: a loud failure or a valid prefix — anything but a panic or a
	// non-prefix corpus.
	red, releaseRed, err := reg2.Acquire(tenantCrashIDs[0], false)
	if err == nil {
		if n := matchPrefix(bases[0], ops[0], corpusOf(t, red)); n < 0 {
			t.Fatalf("red recovered a corpus that is no prefix of its history")
		}
		releaseRed()
	}
}
