package trajcover

// Frozen snapshot persistence. Unlike TQSNAP02/TQSHRD01 — which store
// raw trajectories and rebuild the TQ-tree on restore — the frozen
// formats serialize the columnar index slices nearly verbatim:
//
//	TQSNAP03 — single frozen index: magic, frozen payload, CRC trailer.
//	TQSHRD02 — sharded frozen container: CRC'd shared header (shard
//	           count, partitioner kind), then one length-prefixed,
//	           individually CRC'd frozen payload per shard.
//
// A frozen payload is the column slices of tqtree.FrozenColumns in fixed
// order plus the trajectory table (in entry-slab first-appearance order,
// so entTraj indexes resolve by position). Restoring is a bulk read, the
// CRC check, and the structural bounds validation in
// tqtree.FrozenFromColumns — no tree rebuild, no sorting — which is what
// makes frozen restore several times faster than the rebuild formats.
//
// Every multi-byte column starts at an offset that is a multiple of 8
// from the payload start (zero pad bytes follow the int32 column groups
// and the container headers/frames where needed), and each trajectory
// record carries its precomputed length and MBR. Both exist for the
// mapped-restore path (snapshot_mmap.go): 8-alignment lets the reader
// alias float64/uint64/Rect/Point columns directly onto a page-aligned
// file mapping, and the cached length/MBR make a mapped open O(columns)
// instead of O(points). Pad bytes are covered by the CRCs like any other
// payload byte. This is an internal revision of the TQSNAP03/TQSHRD02
// (and TQLIVE01) encodings; streams written by earlier builds are not
// readable, which these formats never promised.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/trajcover/trajcover/internal/geo"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

var (
	frozenMagic        = [8]byte{'T', 'Q', 'S', 'N', 'A', 'P', '0', '3'}
	shardedFrozenMagic = [8]byte{'T', 'Q', 'S', 'H', 'R', 'D', '0', '2'}
)

// colWriter batches little-endian column writes through one buffer so a
// whole payload costs a handful of Write calls per column instead of one
// per value.
type colWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func newColWriter(w io.Writer) *colWriter {
	return &colWriter{w: w, buf: make([]byte, 0, 1<<16)}
}

func (cw *colWriter) flushIfFull() {
	if len(cw.buf) >= (1<<16)-16 {
		cw.flush()
	}
}

func (cw *colWriter) flush() {
	if cw.err == nil && len(cw.buf) > 0 {
		_, cw.err = cw.w.Write(cw.buf)
	}
	cw.buf = cw.buf[:0]
}

func (cw *colWriter) u64(v uint64) {
	cw.buf = binary.LittleEndian.AppendUint64(cw.buf, v)
	cw.flushIfFull()
}

func (cw *colWriter) u32(v uint32) {
	cw.buf = binary.LittleEndian.AppendUint32(cw.buf, v)
	cw.flushIfFull()
}

func (cw *colWriter) u64s(vs []uint64) {
	for _, v := range vs {
		cw.u64(v)
	}
}

func (cw *colWriter) f64s(vs []float64) {
	for _, v := range vs {
		cw.u64(math.Float64bits(v))
	}
}

func (cw *colWriter) i32s(vs []int32) {
	for _, v := range vs {
		cw.u32(uint32(v))
	}
}

func (cw *colWriter) rects(vs []geo.Rect) {
	for _, r := range vs {
		cw.u64(math.Float64bits(r.MinX))
		cw.u64(math.Float64bits(r.MinY))
		cw.u64(math.Float64bits(r.MaxX))
		cw.u64(math.Float64bits(r.MaxY))
	}
}

func (cw *colWriter) points(vs []geo.Point) {
	for _, p := range vs {
		cw.u64(math.Float64bits(p.X))
		cw.u64(math.Float64bits(p.Y))
	}
}

// pad writes n zero bytes (n < 8; realigns the stream to 8 bytes after
// an int32 column group).
func (cw *colWriter) pad(n int) {
	for i := 0; i < n; i++ {
		cw.buf = append(cw.buf, 0)
	}
	cw.flushIfFull()
}

// pad8 returns the zero bytes needed to realign a stream to 8 after
// size bytes.
func pad8(size uint64) uint64 { return (8 - size%8) % 8 }

// i32Pad returns the pad after an n-value int32 column group.
func i32Pad(n uint64) int { return int(pad8(4 * n)) }

// readZeroPad consumes n container pad bytes and requires them to be
// zero. Container pads sit outside the header/frame CRCs (they realign
// the stream after a CRC), so this explicit check is what keeps a
// flipped pad bit a loud error instead of silently accepted input.
func readZeroPad(r io.Reader, n uint64) error {
	if n == 0 {
		return nil
	}
	var buf [8]byte
	b := buf[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return fmt.Errorf("%w: truncated padding", ErrBadSnapshot)
	}
	for _, c := range b {
		if c != 0 {
			return fmt.Errorf("%w: nonzero padding", ErrBadSnapshot)
		}
	}
	return nil
}

// colReader is the bulk little-endian reader. Columns are grown by
// append in bounded chunks, so memory consumption tracks the bytes
// actually present in the stream — a corrupt count fails with a
// truncation error instead of one absurd allocation.
type colReader struct {
	r   io.Reader
	buf []byte
}

func newColReader(r io.Reader) *colReader {
	return &colReader{r: r, buf: make([]byte, 1<<16)}
}

// chunk reads exactly n*width bytes in buffer-sized pieces, invoking fn
// on each piece.
func (cr *colReader) chunk(n, width int, fn func(b []byte)) error {
	per := len(cr.buf) / width
	for n > 0 {
		c := n
		if c > per {
			c = per
		}
		b := cr.buf[:c*width]
		if _, err := io.ReadFull(cr.r, b); err != nil {
			return fmt.Errorf("%w: truncated column (%v)", ErrBadSnapshot, err)
		}
		fn(b)
		n -= c
	}
	return nil
}

func (cr *colReader) u64(dst *uint64) error {
	b := cr.buf[:8]
	if _, err := io.ReadFull(cr.r, b); err != nil {
		return fmt.Errorf("%w: truncated header (%v)", ErrBadSnapshot, err)
	}
	*dst = binary.LittleEndian.Uint64(b)
	return nil
}

func (cr *colReader) u64s(n int) ([]uint64, error) {
	out := make([]uint64, 0, minInt(n, 1<<16))
	err := cr.chunk(n, 8, func(b []byte) {
		for i := 0; i < len(b); i += 8 {
			out = append(out, binary.LittleEndian.Uint64(b[i:]))
		}
	})
	return out, err
}

func (cr *colReader) f64s(n int) ([]float64, error) {
	out := make([]float64, 0, minInt(n, 1<<16))
	err := cr.chunk(n, 8, func(b []byte) {
		for i := 0; i < len(b); i += 8 {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[i:])))
		}
	})
	return out, err
}

func (cr *colReader) i32s(n int) ([]int32, error) {
	out := make([]int32, 0, minInt(n, 1<<16))
	err := cr.chunk(n, 4, func(b []byte) {
		for i := 0; i < len(b); i += 4 {
			out = append(out, int32(binary.LittleEndian.Uint32(b[i:])))
		}
	})
	return out, err
}

func (cr *colReader) rects(n int) ([]geo.Rect, error) {
	out := make([]geo.Rect, 0, minInt(n, 1<<14))
	err := cr.chunk(n, 32, func(b []byte) {
		for i := 0; i < len(b); i += 32 {
			out = append(out, geo.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(b[i:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[i+8:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[i+16:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[i+24:])),
			})
		}
	})
	return out, err
}

func (cr *colReader) pointsInto(dst []geo.Point, n int) ([]geo.Point, error) {
	err := cr.chunk(n, 16, func(b []byte) {
		for i := 0; i < len(b); i += 16 {
			dst = append(dst, geo.Point{
				X: math.Float64frombits(binary.LittleEndian.Uint64(b[i:])),
				Y: math.Float64frombits(binary.LittleEndian.Uint64(b[i+8:])),
			})
		}
	})
	return dst, err
}

func (cr *colReader) points(n int) ([]geo.Point, error) {
	return cr.pointsInto(make([]geo.Point, 0, minInt(n, 1<<15)), n)
}

// skip consumes n pad bytes (their value is ignored; the CRC covers
// them).
func (cr *colReader) skip(n int) error {
	if n == 0 {
		return nil
	}
	b := cr.buf[:n]
	if _, err := io.ReadFull(cr.r, b); err != nil {
		return fmt.Errorf("%w: truncated padding (%v)", ErrBadSnapshot, err)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// frozenPayloadSize returns the exact encoded byte size of
// writeFrozenPayload's output — used to length-prefix TQSHRD02 frames
// without buffering them.
func frozenPayloadSize(f *tqtree.Frozen) uint64 {
	c := f.Columns()
	nn := uint64(len(c.NodeRect))
	nb := uint64(len(c.BktMinStart))
	ne := uint64(len(c.EntFirst))
	size := uint64(12 * 8)                            // header
	size += nn * 32                                   // node rects
	size += nn * 4 * 2                                // childBase, childCount
	size += (nn + 1) * 4                              // entryOff
	size += pad8(4 * (3*nn + 1))                      // realign after the int32 group
	size += nn * 8 * 2 * uint64(service.NumScenarios) // ownUB + treeUB
	if c.Ordering == tqtree.ZOrder {
		size += (nn + 1) * 4            // bucketOff
		size += (nb + 1) * 4            // bktEntryOff
		size += pad8(4 * (nn + nb + 2)) // realign after the int32 group
		size += nb * 8 * 2              // bktMinStart, bktMaxStart
		size += nb * 32 * 3             // bucket MBRs
	}
	size += ne * 16 * 2 // entFirst, entLast
	size += ne * 32     // entMBR
	size += ne * 4 * 2  // entTraj, entSeg (8·ne bytes — already 8-aligned)
	for _, t := range f.Trajectories() {
		size += frozenTrajectorySize(t)
	}
	return size
}

// frozenTrajectorySize is the encoded size of one frozen trajectory
// record: u32 id, u32 point count, f64 length, Rect MBR, then the
// points. 48+16n bytes — a multiple of 8, so records never break column
// alignment. (The rebuild formats keep the smaller trajectorySize
// record; only the frozen/live payloads cache length and MBR.)
func frozenTrajectorySize(t *trajectory.Trajectory) uint64 {
	return 4 + 4 + 8 + 32 + 16*uint64(t.Len())
}

// readFrozenTrajectoryRecord decodes one frozen trajectory record. The
// recorded length/MBR are what the mapped reader serves without touching
// the points; this heap reader recomputes them from the points (same
// arithmetic, so bit-equal) and cross-checks, which catches a writer bug
// or a CRC-fixed-up forgery before it can diverge the two restore paths.
func readFrozenTrajectoryRecord(cr *colReader, i uint64) (*trajectory.Trajectory, error) {
	b := cr.buf[:8]
	if _, err := io.ReadFull(cr.r, b); err != nil {
		return nil, fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	id := binary.LittleEndian.Uint32(b)
	npts := binary.LittleEndian.Uint32(b[4:])
	if npts < 2 || npts > 1<<24 {
		return nil, fmt.Errorf("%w: trajectory %d has %d points", ErrBadSnapshot, i, npts)
	}
	var lenBits uint64
	if err := cr.u64(&lenBits); err != nil {
		return nil, fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	mbrCol, err := cr.rects(1)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated trajectory %d", ErrBadSnapshot, i)
	}
	pts, err := cr.pointsInto(make([]geo.Point, 0, npts), int(npts))
	if err != nil {
		return nil, err
	}
	t, err := trajectory.New(trajectory.ID(id), pts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if math.Float64bits(t.Length()) != lenBits || t.MBR() != mbrCol[0] {
		return nil, fmt.Errorf("%w: trajectory %d cached length/MBR disagree with points", ErrBadSnapshot, i)
	}
	return t, nil
}

// writeFrozenPayload encodes the frozen index: a fixed header, the column
// slices in fixed order, then the trajectory table.
func writeFrozenPayload(w io.Writer, f *tqtree.Frozen) error {
	c := f.Columns()
	cw := newColWriter(w)
	cw.u64(uint64(c.Variant))
	cw.u64(uint64(c.Ordering))
	cw.u64(uint64(c.Beta))
	cw.u64(uint64(c.MaxDepth))
	cw.u64(math.Float64bits(c.Bounds.MinX))
	cw.u64(math.Float64bits(c.Bounds.MinY))
	cw.u64(math.Float64bits(c.Bounds.MaxX))
	cw.u64(math.Float64bits(c.Bounds.MaxY))
	cw.u64(uint64(len(c.NodeRect)))
	cw.u64(uint64(len(c.BktMinStart)))
	cw.u64(uint64(len(c.EntFirst)))
	cw.u64(uint64(len(f.Trajectories())))

	nn := uint64(len(c.NodeRect))
	nb := uint64(len(c.BktMinStart))
	cw.rects(c.NodeRect)
	cw.i32s(c.ChildBase)
	cw.i32s(c.ChildCount)
	cw.i32s(c.EntryOff)
	cw.pad(i32Pad(3*nn + 1))
	cw.f64s(c.OwnUB)
	cw.f64s(c.TreeUB)
	if c.Ordering == tqtree.ZOrder {
		cw.i32s(c.BucketOff)
		cw.i32s(c.BktEntryOff)
		cw.pad(i32Pad(nn + nb + 2))
		cw.u64s(c.BktMinStart)
		cw.u64s(c.BktMaxStart)
		cw.rects(c.BktStartMBR)
		cw.rects(c.BktEndMBR)
		cw.rects(c.BktFullMBR)
	}
	cw.points(c.EntFirst)
	cw.points(c.EntLast)
	cw.rects(c.EntMBR)
	cw.i32s(c.EntTraj)
	cw.i32s(c.EntSeg)

	for _, t := range f.Trajectories() {
		cw.u32(uint32(t.ID))
		cw.u32(uint32(t.Len()))
		cw.u64(math.Float64bits(t.Length()))
		cw.rects([]geo.Rect{t.MBR()})
		cw.points(t.Points)
	}
	cw.flush()
	return cw.err
}

// readFrozenPayload decodes a frozen payload and reassembles the index
// (structural validation included) together with its trajectory set.
func readFrozenPayload(r io.Reader) (*tqtree.Frozen, *trajectory.Set, error) {
	cr := newColReader(r)
	var header [12]uint64
	for i := range header {
		if err := cr.u64(&header[i]); err != nil {
			return nil, nil, err
		}
	}
	c := tqtree.FrozenColumns{
		Variant:  tqtree.Variant(header[0]),
		Ordering: tqtree.Ordering(header[1]),
		Beta:     int(header[2]),
		MaxDepth: int(header[3]),
		Bounds: geo.Rect{
			MinX: math.Float64frombits(header[4]),
			MinY: math.Float64frombits(header[5]),
			MaxX: math.Float64frombits(header[6]),
			MaxY: math.Float64frombits(header[7]),
		},
	}
	nn, nb, ne, nt := header[8], header[9], header[10], header[11]
	if c.Ordering != tqtree.ZOrder && c.Ordering != tqtree.Basic {
		return nil, nil, fmt.Errorf("%w: invalid ordering %d", ErrBadSnapshot, header[1])
	}
	// Structural plausibility before any large read: every bucket holds
	// at least one entry and every indexed trajectory contributes at
	// least one entry, so corrupt counts fail here.
	const maxCount = 1 << 31
	if nn == 0 || nn > maxCount || ne > maxCount || nb > ne || nt > ne || (ne > 0 && nt == 0) {
		return nil, nil, fmt.Errorf("%w: implausible frozen counts (nodes %d, buckets %d, entries %d, trajectories %d)",
			ErrBadSnapshot, nn, nb, ne, nt)
	}
	if c.Ordering == tqtree.Basic && nb != 0 {
		return nil, nil, fmt.Errorf("%w: basic ordering with %d buckets", ErrBadSnapshot, nb)
	}

	var err error
	if c.NodeRect, err = cr.rects(int(nn)); err == nil {
		if c.ChildBase, err = cr.i32s(int(nn)); err == nil {
			c.ChildCount, err = cr.i32s(int(nn))
		}
	}
	if err == nil {
		c.EntryOff, err = cr.i32s(int(nn) + 1)
	}
	if err == nil {
		err = cr.skip(i32Pad(3*nn + 1))
	}
	if err == nil {
		c.OwnUB, err = cr.f64s(int(nn) * service.NumScenarios)
	}
	if err == nil {
		c.TreeUB, err = cr.f64s(int(nn) * service.NumScenarios)
	}
	if err == nil && c.Ordering == tqtree.ZOrder {
		c.BucketOff, err = cr.i32s(int(nn) + 1)
		if err == nil {
			c.BktEntryOff, err = cr.i32s(int(nb) + 1)
		}
		if err == nil {
			err = cr.skip(i32Pad(nn + nb + 2))
		}
		if err == nil {
			c.BktMinStart, err = cr.u64s(int(nb))
		}
		if err == nil {
			c.BktMaxStart, err = cr.u64s(int(nb))
		}
		if err == nil {
			c.BktStartMBR, err = cr.rects(int(nb))
		}
		if err == nil {
			c.BktEndMBR, err = cr.rects(int(nb))
		}
		if err == nil {
			c.BktFullMBR, err = cr.rects(int(nb))
		}
	}
	if err == nil {
		c.EntFirst, err = cr.points(int(ne))
	}
	if err == nil {
		c.EntLast, err = cr.points(int(ne))
	}
	if err == nil {
		c.EntMBR, err = cr.rects(int(ne))
	}
	if err == nil {
		c.EntTraj, err = cr.i32s(int(ne))
	}
	if err == nil {
		c.EntSeg, err = cr.i32s(int(ne))
	}
	if err != nil {
		return nil, nil, err
	}

	trajs := make([]*trajectory.Trajectory, 0, minInt(int(nt), 1<<16))
	for i := uint64(0); i < nt; i++ {
		t, err := readFrozenTrajectoryRecord(cr, i)
		if err != nil {
			return nil, nil, err
		}
		trajs = append(trajs, t)
	}
	set, err := trajectory.NewSet(trajs)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	f, err := tqtree.FrozenFromColumns(c, trajs)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return f, set, nil
}

// WriteSnapshot serializes the frozen index as a TQSNAP03 stream: the
// columnar payload framed by a magic header and a CRC32 trailer.
func (x *FrozenIndex) WriteSnapshot(w io.Writer) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(frozenMagic[:]); err != nil {
		return err
	}
	if err := writeFrozenPayload(mw, x.engine.Frozen()); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// ReadFrozenSnapshot restores a FrozenIndex written by
// (*FrozenIndex).WriteSnapshot. The columns are bulk-read, checksummed,
// and bounds-checked — no tree rebuild. Rebuild-format and sharded
// streams are detected and rejected with a pointer to the right reader.
func ReadFrozenSnapshot(r io.Reader) (*FrozenIndex, error) {
	base := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	br := &hashReader{r: base, crc: crc}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	switch magic {
	case frozenMagic:
	case snapshotMagic, snapshotMagicV1:
		return nil, fmt.Errorf("%w: rebuild-format snapshot; use ReadSnapshot", ErrBadSnapshot)
	case shardedMagic, shardedFrozenMagic:
		return nil, fmt.Errorf("%w: sharded snapshot; use ReadShardedSnapshot or ReadFrozenShardedSnapshot", ErrBadSnapshot)
	case liveMagic:
		return nil, fmt.Errorf("%w: live snapshot; use ReadLiveSnapshot", ErrBadSnapshot)
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	f, set, err := readFrozenPayload(br)
	if err != nil {
		return nil, err
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(base, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrBadSnapshot)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return &FrozenIndex{engine: query.NewFrozenEngine(f, set), set: set}, nil
}

// WriteSnapshot serializes the frozen sharded index as a TQSHRD02
// container: a CRC'd shared header (shard count, partitioner kind), then
// one length-prefixed, individually CRC'd frozen payload per shard.
// Per-frame checksums localize corruption to one shard and the length
// prefixes let tooling skip frames without decoding them.
func (x *FrozenShardedIndex) WriteSnapshot(w io.Writer) error {
	kind := x.s.PartitionerKind()

	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write(shardedFrozenMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint64(x.s.NumShards())); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(len(kind))); err != nil {
		return err
	}
	if _, err := io.WriteString(mw, kind); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	// Realign so every frame's payload starts 8-aligned in the file (the
	// header is 24+len(kind) bytes, each frame 8+payload+4+4): the mapped
	// reader aliases columns at file offsets.
	if _, err := w.Write(make([]byte, pad8(uint64(len(kind))))); err != nil {
		return err
	}

	for i := 0; i < x.s.NumShards(); i++ {
		f := x.s.Engine(i).Frozen()
		if err := binary.Write(w, binary.LittleEndian, frozenPayloadSize(f)); err != nil {
			return err
		}
		fcrc := crc32.NewIEEE()
		if err := writeFrozenPayload(io.MultiWriter(w, fcrc), f); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, fcrc.Sum32()); err != nil {
			return err
		}
		if _, err := w.Write([]byte{0, 0, 0, 0}); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrozenShardedSnapshot restores a FrozenShardedIndex written by
// (*FrozenShardedIndex).WriteSnapshot, bulk-reading each shard's columns
// from its own frame.
func ReadFrozenShardedSnapshot(r io.Reader) (*FrozenShardedIndex, error) {
	base := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	br := &hashReader{r: base, crc: crc}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	switch magic {
	case shardedFrozenMagic:
	case shardedMagic:
		return nil, fmt.Errorf("%w: rebuild-format sharded snapshot; use ReadShardedSnapshot", ErrBadSnapshot)
	case snapshotMagic, snapshotMagicV1, frozenMagic:
		return nil, fmt.Errorf("%w: single-index snapshot; use ReadSnapshot or ReadFrozenSnapshot", ErrBadSnapshot)
	case liveMagic:
		return nil, fmt.Errorf("%w: live snapshot; use ReadLiveSnapshot", ErrBadSnapshot)
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	var nShards uint64
	if err := binary.Read(br, binary.LittleEndian, &nShards); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	var kindLen uint32
	if err := binary.Read(br, binary.LittleEndian, &kindLen); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	if kindLen > 256 {
		return nil, fmt.Errorf("%w: implausible partitioner kind length %d", ErrBadSnapshot, kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kindBuf); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadSnapshot)
	}
	wantHdr := crc.Sum32()
	var gotHdr uint32
	if err := binary.Read(base, binary.LittleEndian, &gotHdr); err != nil {
		return nil, fmt.Errorf("%w: missing header checksum", ErrBadSnapshot)
	}
	if gotHdr != wantHdr {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrBadSnapshot)
	}
	if err := readZeroPad(base, pad8(uint64(kindLen))); err != nil {
		return nil, err
	}

	const maxShards = 1 << 16
	if nShards == 0 || nShards > maxShards {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrBadSnapshot, nShards)
	}
	engines := make([]*query.FrozenEngine, 0, nShards)
	bounds := geo.Rect{}
	for s := uint64(0); s < nShards; s++ {
		var payloadLen uint64
		if err := binary.Read(base, binary.LittleEndian, &payloadLen); err != nil {
			return nil, fmt.Errorf("%w: truncated frame %d", ErrBadSnapshot, s)
		}
		fcrc := crc32.NewIEEE()
		fr := &hashReader{r: io.LimitReader(base, int64(payloadLen)), crc: fcrc}
		f, set, err := readFrozenPayload(fr)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", s, err)
		}
		// The frame must be fully consumed: leftover bytes mean the
		// length prefix and the payload disagree.
		if n, _ := io.Copy(io.Discard, fr); n != 0 {
			return nil, fmt.Errorf("%w: frame %d has %d trailing bytes", ErrBadSnapshot, s, n)
		}
		wantFrame := fcrc.Sum32()
		var gotFrame uint32
		if err := binary.Read(base, binary.LittleEndian, &gotFrame); err != nil {
			return nil, fmt.Errorf("%w: frame %d missing checksum", ErrBadSnapshot, s)
		}
		if gotFrame != wantFrame {
			return nil, fmt.Errorf("%w: frame %d checksum mismatch", ErrBadSnapshot, s)
		}
		if err := readZeroPad(base, 4); err != nil {
			return nil, fmt.Errorf("frame %d: %w", s, err)
		}
		if s == 0 {
			bounds = f.Bounds()
		}
		engines = append(engines, query.NewFrozenEngine(f, set))
	}
	sf, err := shard.FrozenFromEngines(engines, bounds, string(kindBuf))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &FrozenShardedIndex{s: sf}, nil
}
