package trajcover

// Crash-recovery property tests for the WAL-backed live index — the
// prefix-consistency idiom (TestLiveSnapshotUnderWrites) extended
// across process death: a child process runs a scripted write history
// against OpenLiveShardedIndex and is SIGKILLed at a random point; the
// parent reopens the WAL directory and asserts the recovered index is
// byte-identical to a fresh build of a prefix of the history that
// contains every write the child had acknowledged. A separate arm
// truncates and bit-flips segment files at arbitrary offsets and
// asserts recovery either fails loudly or still yields a valid prefix
// — never a panic, never a silently wrong corpus.

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

const (
	walChildEnv = "TRAJCOVER_WAL_CRASH_CHILD"
	walDirEnv   = "TRAJCOVER_WAL_CRASH_DIR"
	walSeedEnv  = "TRAJCOVER_WAL_CRASH_SEED"
	walAckEnv   = "TRAJCOVER_WAL_CRASH_ACK"
)

// walStressN scales crash rounds up under TRAJCOVER_STRESS (the CI
// crash-recovery job sets it).
func walStressN(n int) int {
	if os.Getenv("TRAJCOVER_STRESS") != "" {
		return n * 4
	}
	return n
}

// crashOp is one scripted write: an insert (insert != nil) or a delete.
type crashOp struct {
	insert *Trajectory
	del    ID
}

// crashWorkload deterministically derives the bootstrap corpus, the
// write history, and probe routes from seed — the parent and the child
// process compute identical values from the same seed.
func crashWorkload(seed int64) (base []*Trajectory, ops []crashOp, routes []*Facility) {
	city := NewYorkCity()
	users := TaxiTrips(city, 1200, seed)
	routes = BusRoutes(city, 12, 10, seed+1)
	base = users[:400]
	live := append([]*Trajectory(nil), base...)
	rng := rand.New(rand.NewSource(seed + 2))
	for _, u := range users[400:] {
		if len(live) > 0 && rng.Float64() < 0.3 {
			i := rng.Intn(len(live))
			ops = append(ops, crashOp{del: live[i].ID})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		ops = append(ops, crashOp{insert: u})
		live = append(live, u)
	}
	return base, ops, routes
}

// crashPolicy keeps rebuilds frequent so kills land during swaps too.
func crashPolicy() LivePolicy { return LivePolicy{MaxDelta: 128} }

// crashBootstrap is the first-boot index builder shared by the child
// and the parent's recovery.
func crashBootstrap(base []*Trajectory) func() (*LiveShardedIndex, error) {
	return func() (*LiveShardedIndex, error) {
		return NewLiveShardedIndex(base, LiveShardOptions{
			Shards:      2,
			Partitioner: HashPartitioner(),
			Index:       IndexOptions{Ordering: ZOrdering},
			Policy:      crashPolicy(),
		})
	}
}

// crashWALOptions uses small segments so histories span several files.
func crashWALOptions(dir string) WALOptions {
	return WALOptions{Dir: dir, Sync: WALSyncAlways, SegmentBytes: 1 << 15}
}

// TestWALCrashChild is the victim process: it opens a WAL-backed index,
// applies the scripted history, and records each acknowledged op index
// in the ack file. The parent SIGKILLs it at a random point. Skipped
// unless spawned by TestWALCrashRecovery.
func TestWALCrashChild(t *testing.T) {
	if os.Getenv(walChildEnv) == "" {
		t.Skip("helper process for TestWALCrashRecovery")
	}
	seed, err := strconv.ParseInt(os.Getenv(walSeedEnv), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	base, ops, _ := crashWorkload(seed)
	idx, err := OpenLiveShardedIndex(crashWALOptions(os.Getenv(walDirEnv)), crashPolicy(), crashBootstrap(base))
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	ack, err := os.Create(os.Getenv(walAckEnv))
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if op.insert != nil {
			if err := idx.Insert(op.insert); err != nil {
				t.Fatalf("child insert %d: %v", i, err)
			}
		} else if _, err := idx.Delete(op.del); err != nil {
			t.Fatalf("child delete %d: %v", i, err)
		}
		// The write is acknowledged: record it. Unbuffered, so the
		// parent (same kernel, so SIGKILL loses nothing written) sees
		// every acked index; a torn final line is parsed around.
		if _, err := fmt.Fprintf(ack, "%d\n", i+1); err != nil {
			t.Fatal(err)
		}
		// A mid-history checkpoint lets kills land during snapshot
		// write + segment truncation too.
		if i == len(ops)/2 {
			if err := idx.Checkpoint(); err != nil {
				t.Fatalf("child checkpoint: %v", err)
			}
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
}

// readAcked returns the number of writes the child acknowledged — the
// last complete line of the ack file (0 if the child never got there).
func readAcked(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for _, line := range strings.Split(string(data), "\n") {
		if n, err := strconv.Atoi(strings.TrimSpace(line)); err == nil && n > acked {
			acked = n
		}
	}
	return acked
}

// corpusOf collects the recovered logical corpus, failing on duplicate
// IDs across shards.
func corpusOf(t *testing.T, x *LiveShardedIndex) map[ID]*Trajectory {
	t.Helper()
	got := map[ID]*Trajectory{}
	for _, ep := range x.epochs() {
		for _, u := range ep.LogicalCorpus() {
			if _, dup := got[u.ID]; dup {
				t.Fatalf("recovered corpus has duplicate id %d", u.ID)
			}
			got[u.ID] = u
		}
	}
	return got
}

// sameCorpus compares two ID->trajectory maps point for point.
func sameCorpus(a, b map[ID]*Trajectory) bool {
	if len(a) != len(b) {
		return false
	}
	for id, u := range a {
		v, ok := b[id]
		if !ok || u.Len() != v.Len() {
			return false
		}
		for i, p := range u.Points {
			if v.Points[i] != p {
				return false
			}
		}
	}
	return true
}

// matchPrefix finds the unique history prefix whose corpus equals the
// recovered one (every insert introduces a fresh ID and IDs are never
// reused, so all prefix corpora are distinct), or -1.
func matchPrefix(base []*Trajectory, ops []crashOp, got map[ID]*Trajectory) int {
	sim := make(map[ID]*Trajectory, len(base))
	for _, u := range base {
		sim[u.ID] = u
	}
	if sameCorpus(sim, got) {
		return 0
	}
	for i, op := range ops {
		if op.insert != nil {
			sim[op.insert.ID] = op.insert
		} else {
			delete(sim, op.del)
		}
		if sameCorpus(sim, got) {
			return i + 1
		}
	}
	return -1
}

// freshBuild replays ops[:n] onto a from-scratch index — the reference
// the recovered index must answer identically to.
func freshBuild(t *testing.T, base []*Trajectory, ops []crashOp, n int) *LiveShardedIndex {
	t.Helper()
	ref, err := crashBootstrap(base)()
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops[:n] {
		if op.insert != nil {
			if err := ref.Insert(op.insert); err != nil {
				t.Fatalf("ref insert %d: %v", i, err)
			}
		} else if _, err := ref.Delete(op.del); err != nil {
			t.Fatalf("ref delete %d: %v", i, err)
		}
	}
	return ref
}

// assertSameAnswers compares ServiceValues and TopK over the Binary
// scenario — integral, so equality is exact (byte-identical floats).
func assertSameAnswers(t *testing.T, got, want *LiveShardedIndex, routes []*Facility) {
	t.Helper()
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	gv, err := got.ServiceValues(routes, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	wv, err := want.ServiceValues(routes, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wv {
		if gv[i] != wv[i] {
			t.Fatalf("route %d: recovered service value %v, fresh build %v", routes[i].ID, gv[i], wv[i])
		}
	}
	gt, err := got.TopK(routes, 5, q)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := want.TopK(routes, 5, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != len(wt) {
		t.Fatalf("TopK lengths %d vs %d", len(gt), len(wt))
	}
	for i := range wt {
		if gt[i].Facility.ID != wt[i].Facility.ID || gt[i].Service != wt[i].Service {
			t.Fatalf("TopK[%d]: recovered (%d, %v), fresh build (%d, %v)",
				i, gt[i].Facility.ID, gt[i].Service, wt[i].Facility.ID, wt[i].Service)
		}
	}
}

// TestWALCrashRecovery is the centerpiece: SIGKILL a child mid-history
// at a random point, reopen its WAL directory, and require the
// recovered index to answer byte-identical to a fresh build of a prefix
// of the history containing every acknowledged write (sync policy
// always: no acked write is ever lost).
func TestWALCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	const seed = 31
	base, ops, routes := crashWorkload(seed)
	rng := rand.New(rand.NewSource(97))
	for round := 0; round < walStressN(4); round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			scratch := t.TempDir()
			walDir := filepath.Join(scratch, "wal")
			ackPath := filepath.Join(scratch, "acked")
			cmd := exec.Command(os.Args[0], "-test.run=^TestWALCrashChild$", "-test.count=1")
			cmd.Env = append(os.Environ(),
				walChildEnv+"=1",
				walDirEnv+"="+walDir,
				walSeedEnv+"="+strconv.FormatInt(seed, 10),
				walAckEnv+"="+ackPath,
			)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Kill once the child has acked a random target op — anywhere
			// from mid-bootstrap (target 0) to (occasionally) past the
			// end, where the child exits cleanly and the full history is
			// the prefix that must verify.
			target := rng.Intn(len(ops) + len(ops)/8)
			done := make(chan struct{})
			go func() { cmd.Wait(); close(done) }()
			deadline := time.Now().Add(60 * time.Second)
		poll:
			for readAcked(t, ackPath) < target {
				if time.Now().After(deadline) {
					t.Errorf("child never reached op %d", target)
					break
				}
				select {
				case <-done:
					break poll
				case <-time.After(time.Millisecond):
				}
			}
			cmd.Process.Kill()
			<-done

			acked := readAcked(t, ackPath)
			rec, err := OpenLiveShardedIndex(crashWALOptions(walDir), crashPolicy(), crashBootstrap(base))
			if err != nil {
				t.Fatalf("recover after kill near op %d (acked %d): %v", target, acked, err)
			}
			defer rec.Close()
			n := matchPrefix(base, ops, corpusOf(t, rec))
			if n < 0 {
				t.Fatalf("recovered corpus (len %d) matches no prefix of the history (acked %d)", rec.Len(), acked)
			}
			if n < acked {
				t.Fatalf("recovered prefix %d loses acknowledged writes (acked %d)", n, acked)
			}
			t.Logf("killed near op %d: acked %d, recovered prefix %d/%d", target, acked, n, len(ops))
			assertSameAnswers(t, rec, freshBuild(t, base, ops, n), routes)
		})
	}
}

// buildCrashedWALDir runs a prefix of the history in-process with
// sync=always and abandons the index without Close — the on-disk state
// of a crashed process — returning the applied op count.
func buildCrashedWALDir(t *testing.T, dir string, base []*Trajectory, ops []crashOp) int {
	t.Helper()
	idx, err := OpenLiveShardedIndex(crashWALOptions(dir), crashPolicy(), crashBootstrap(base))
	if err != nil {
		t.Fatal(err)
	}
	n := 160
	if n > len(ops) {
		n = len(ops)
	}
	for i, op := range ops[:n] {
		if op.insert != nil {
			if err := idx.Insert(op.insert); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		} else if _, err := idx.Delete(op.del); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	// No Close: with SyncAlways every acked record is already flushed
	// and fsynced, exactly like a SIGKILL arriving now.
	return n
}

// TestWALCorruptionRecovery: truncate and bit-flip WAL segment files at
// sampled byte offsets. Every mutation must either fail recovery loudly
// or recover a valid prefix of the history; corrupted history may lose
// acked writes (the medium failed, and recovery says so by construction
// only when the damage is a legal torn tail) but must never panic or
// serve a corpus that is not a prefix.
func TestWALCorruptionRecovery(t *testing.T) {
	const seed = 53
	base, ops, routes := crashWorkload(seed)
	master := t.TempDir()
	buildCrashedWALDir(t, master, base, ops)

	segs, err := filepath.Glob(filepath.Join(master, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in master dir (err %v)", err)
	}
	files := map[string][]byte{}
	ents, err := os.ReadDir(master)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(master, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}

	lastSeg := filepath.Base(segs[len(segs)-1])
	firstSeg := filepath.Base(segs[0])
	recoveries := 0
	tryRecover := func(t *testing.T, mutate func(map[string][]byte)) {
		t.Helper()
		dir := t.TempDir()
		mut := map[string][]byte{}
		for name, data := range files {
			mut[name] = append([]byte(nil), data...)
		}
		mutate(mut)
		for name, data := range mut {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		rec, err := OpenLiveShardedIndex(crashWALOptions(dir), crashPolicy(), crashBootstrap(base))
		if err != nil {
			return // loud failure is a legal outcome for corrupted media
		}
		defer rec.Close()
		if n := matchPrefix(base, ops, corpusOf(t, rec)); n < 0 {
			t.Fatalf("recovered corpus matches no prefix of the history")
		}
		// The recovered index must also serve.
		if _, err := rec.ServiceValue(routes[0], Query{Scenario: Binary, Psi: DefaultPsi}); err != nil {
			t.Fatalf("recovered index cannot serve: %v", err)
		}
		recoveries++
	}

	lastData := files[lastSeg]
	step := len(lastData)/walStressN(24) + 1
	t.Run("truncate-tail", func(t *testing.T) {
		for cut := 0; cut < len(lastData); cut += step {
			tryRecover(t, func(m map[string][]byte) { m[lastSeg] = m[lastSeg][:cut] })
		}
	})
	t.Run("bitflip-tail", func(t *testing.T) {
		for off := 0; off < len(lastData); off += step {
			off := off
			tryRecover(t, func(m map[string][]byte) { m[lastSeg][off] ^= 0x10 })
		}
	})
	t.Run("bitflip-first", func(t *testing.T) {
		firstData := files[firstSeg]
		fstep := len(firstData)/walStressN(12) + 1
		for off := 0; off < len(firstData); off += fstep {
			off := off
			tryRecover(t, func(m map[string][]byte) { m[firstSeg][off] ^= 0x10 })
		}
	})
	t.Run("drop-segment", func(t *testing.T) {
		tryRecover(t, func(m map[string][]byte) { delete(m, firstSeg) })
	})
	if recoveries == 0 {
		t.Fatal("every mutation failed recovery — torn-tail tolerance never engaged")
	}
}
