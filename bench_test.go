package trajcover

// One benchmark per table/figure of the paper's evaluation (Section VI).
// Each BenchmarkFigNN mirrors the corresponding experiment in
// internal/bench (which cmd/tqbench uses for full parameter sweeps); here
// the axes are subsampled so `go test -bench=.` finishes in minutes.
//
// Dataset sizes scale with TRAJCOVER_BENCH_SCALE (default 0.01 — about
// 3.5k trips for the NYT-1day stand-in). Quality figures (10b/10d, 11a/
// 11b) report their metric through b.ReportMetric next to the timing.

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"github.com/trajcover/trajcover/internal/bench"
	"github.com/trajcover/trajcover/internal/datagen"
	"github.com/trajcover/trajcover/internal/maxcov"
	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/service"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

var (
	benchOnce sync.Once
	benchCtx  *bench.Context
)

func ctx() *bench.Context {
	benchOnce.Do(func() {
		scale := 0.01
		if s := os.Getenv("TRAJCOVER_BENCH_SCALE"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				scale = v
			}
		}
		benchCtx = bench.NewContext(bench.Config{Scale: scale, Seed: 1})
	})
	return benchCtx
}

var benchDays = []struct {
	label string
	size  int
}{
	{"0.5d", datagen.NYTHalfDay},
	{"1d", datagen.NYT1Day},
	{"2d", datagen.NYT2Days},
	{"3d", datagen.NYT3Days},
}

const (
	benchStops      = 32
	benchFacilities = 128
	benchK          = 8
)

func benchParams(sc service.Scenario) query.Params {
	return query.Params{Scenario: sc, Psi: datagen.DefaultPsi}
}

// serviceValueMethods yields the (name, fn) pairs of Fig 6's three
// methods for a given dataset size.
func serviceValueMethods(c *bench.Context, paperN int, fs []*trajectory.Facility) []struct {
	name string
	fn   func(b *testing.B)
} {
	p := benchParams(service.Binary)
	bl := c.Baseline("nyt", paperN, tqtree.TwoPoint)
	engB := c.Engine("nyt", paperN, tqtree.TwoPoint, tqtree.Basic)
	engZ := c.Engine("nyt", paperN, tqtree.TwoPoint, tqtree.ZOrder)
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BL", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bl.ServiceValue(fs[i%len(fs)], p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TQ(B)", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engB.ServiceValue(fs[i%len(fs)], p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TQ(Z)", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engZ.ServiceValue(fs[i%len(fs)], p); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// BenchmarkFig6aServiceValueUsers — Fig 6a: single-facility service-value
// time for growing NYT datasets (0.5–3 days of trips).
func BenchmarkFig6aServiceValueUsers(b *testing.B) {
	c := ctx()
	fs := c.Routes("ny", benchFacilities, benchStops)
	for _, d := range benchDays {
		for _, m := range serviceValueMethods(c, d.size, fs) {
			b.Run(fmt.Sprintf("users=%s/method=%s", d.label, m.name), m.fn)
		}
	}
}

// BenchmarkFig6bServiceValueStops — Fig 6b: single-facility service-value
// time as routes grow from 8 to 512 stops.
func BenchmarkFig6bServiceValueStops(b *testing.B) {
	c := ctx()
	for _, stops := range []int{8, 32, 128, 512} {
		fs := c.Routes("ny", benchFacilities, stops)
		for _, m := range serviceValueMethods(c, datagen.NYT1Day, fs) {
			b.Run(fmt.Sprintf("stops=%d/method=%s", stops, m.name), m.fn)
		}
	}
}

// topKMethods yields the (name, fn) pairs of the Fig 7/8/9 methods.
func topKMethods(c *bench.Context, kind string, paperN int, v tqtree.Variant, sc service.Scenario, fs []*trajectory.Facility, k int) []struct {
	name string
	fn   func(b *testing.B)
} {
	p := benchParams(sc)
	bl := c.Baseline(kind, paperN, v)
	engB := c.Engine(kind, paperN, v, tqtree.Basic)
	engZ := c.Engine(kind, paperN, v, tqtree.ZOrder)
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BL", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bl.TopK(fs, k, p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TQ(B)", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engB.TopK(fs, k, p); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"TQ(Z)", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engZ.TopK(fs, k, p); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// BenchmarkFig7aTopKUsers — Fig 7a: kMaxRRST time for growing NYT sizes.
func BenchmarkFig7aTopKUsers(b *testing.B) {
	c := ctx()
	fs := c.Routes("ny", benchFacilities, benchStops)
	for _, d := range benchDays {
		for _, m := range topKMethods(c, "nyt", d.size, tqtree.TwoPoint, service.Binary, fs, benchK) {
			b.Run(fmt.Sprintf("users=%s/method=%s", d.label, m.name), m.fn)
		}
	}
}

// BenchmarkFig7bTopKK — Fig 7b: kMaxRRST time versus k. The baseline is
// flat in k; the TQ-tree methods grow slightly.
func BenchmarkFig7bTopKK(b *testing.B) {
	c := ctx()
	fs := c.Routes("ny", benchFacilities, benchStops)
	for _, k := range []int{4, 32} {
		for _, m := range topKMethods(c, "nyt", datagen.NYT1Day, tqtree.TwoPoint, service.Binary, fs, k) {
			b.Run(fmt.Sprintf("k=%d/method=%s", k, m.name), m.fn)
		}
	}
}

// BenchmarkFig7cTopKStops — Fig 7c: kMaxRRST time versus stops per route.
func BenchmarkFig7cTopKStops(b *testing.B) {
	c := ctx()
	for _, stops := range []int{8, 128, 512} {
		fs := c.Routes("ny", benchFacilities, stops)
		for _, m := range topKMethods(c, "nyt", datagen.NYT1Day, tqtree.TwoPoint, service.Binary, fs, benchK) {
			b.Run(fmt.Sprintf("stops=%d/method=%s", stops, m.name), m.fn)
		}
	}
}

// BenchmarkFig7dTopKFacilities — Fig 7d: kMaxRRST time versus candidate
// facility count.
func BenchmarkFig7dTopKFacilities(b *testing.B) {
	c := ctx()
	for _, n := range []int{16, 128, 512} {
		fs := c.Routes("ny", n, benchStops)
		for _, m := range topKMethods(c, "nyt", datagen.NYT1Day, tqtree.TwoPoint, service.Binary, fs, benchK) {
			b.Run(fmt.Sprintf("facilities=%d/method=%s", n, m.name), m.fn)
		}
	}
}

// BenchmarkFig8aMultipointStops — Fig 8a: the six NYF multipoint methods
// (Segmented and FullTrajectory × BL/TQ(B)/TQ(Z)) versus stops.
func BenchmarkFig8aMultipointStops(b *testing.B) {
	c := ctx()
	for _, stops := range []int{32, 256} {
		fs := c.Routes("ny", benchFacilities, stops)
		for _, v := range []struct {
			prefix  string
			variant tqtree.Variant
		}{{"S", tqtree.Segmented}, {"F", tqtree.FullTrajectory}} {
			for _, m := range topKMethods(c, "nyf", datagen.NYFTrajectories, v.variant, service.PointCount, fs, benchK) {
				b.Run(fmt.Sprintf("stops=%d/method=%s-%s", stops, v.prefix, m.name), m.fn)
			}
		}
	}
}

// BenchmarkFig8bMultipointFacilities — Fig 8b: the six NYF methods versus
// facility count.
func BenchmarkFig8bMultipointFacilities(b *testing.B) {
	c := ctx()
	for _, n := range []int{32, 256} {
		fs := c.Routes("ny", n, benchStops)
		for _, v := range []struct {
			prefix  string
			variant tqtree.Variant
		}{{"S", tqtree.Segmented}, {"F", tqtree.FullTrajectory}} {
			for _, m := range topKMethods(c, "nyf", datagen.NYFTrajectories, v.variant, service.PointCount, fs, benchK) {
				b.Run(fmt.Sprintf("facilities=%d/method=%s-%s", n, v.prefix, m.name), m.fn)
			}
		}
	}
}

// BenchmarkFig9aGeolifeStops — Fig 9a: segmented BJG traces versus stops.
func BenchmarkFig9aGeolifeStops(b *testing.B) {
	c := ctx()
	for _, stops := range []int{32, 256} {
		fs := c.Routes("bj", benchFacilities, stops)
		for _, m := range topKMethods(c, "bjg", datagen.BJGTrajectories, tqtree.Segmented, service.PointCount, fs, benchK) {
			b.Run(fmt.Sprintf("stops=%d/method=%s", stops, m.name), m.fn)
		}
	}
}

// BenchmarkFig9bGeolifeFacilities — Fig 9b: segmented BJG traces versus
// facility count.
func BenchmarkFig9bGeolifeFacilities(b *testing.B) {
	c := ctx()
	for _, n := range []int{32, 256} {
		fs := c.Routes("bj", n, benchStops)
		for _, m := range topKMethods(c, "bjg", datagen.BJGTrajectories, tqtree.Segmented, service.PointCount, fs, benchK) {
			b.Run(fmt.Sprintf("facilities=%d/method=%s", n, m.name), m.fn)
		}
	}
}

// maxCovMethods yields the four Fig 10 solvers. Each reports the
// users-served quality metric (Fig 10b/10d) beside its timing.
func maxCovMethodBenches(c *bench.Context, paperN int, fs []*trajectory.Facility) []struct {
	name string
	fn   func(b *testing.B)
} {
	p := benchParams(service.Binary)
	bl := c.Baseline("nyt", paperN, tqtree.TwoPoint)
	engB := c.Engine("nyt", paperN, tqtree.TwoPoint, tqtree.Basic)
	engZ := c.Engine("nyt", paperN, tqtree.TwoPoint, tqtree.ZOrder)
	report := func(b *testing.B, served int) {
		b.ReportMetric(float64(served), "users-served")
	}
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"G(BL)", func(b *testing.B) {
			var served int
			for i := 0; i < b.N; i++ {
				r, err := maxcov.Greedy(maxcov.BaselineSource{Baseline: bl}, fs, benchK, p)
				if err != nil {
					b.Fatal(err)
				}
				served = r.UsersServed
			}
			report(b, served)
		}},
		{"G-TQ(B)", func(b *testing.B) {
			var served int
			for i := 0; i < b.N; i++ {
				r, err := maxcov.TwoStepGreedy(engB, fs, benchK, 0, p)
				if err != nil {
					b.Fatal(err)
				}
				served = r.UsersServed
			}
			report(b, served)
		}},
		{"G-TQ(Z)", func(b *testing.B) {
			var served int
			for i := 0; i < b.N; i++ {
				r, err := maxcov.TwoStepGreedy(engZ, fs, benchK, 0, p)
				if err != nil {
					b.Fatal(err)
				}
				served = r.UsersServed
			}
			report(b, served)
		}},
		{"Gn-TQ(Z)", func(b *testing.B) {
			var served int
			for i := 0; i < b.N; i++ {
				r, err := maxcov.Genetic(maxcov.EngineSource{Engine: engZ}, fs, benchK, p,
					maxcov.GeneticOptions{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				served = r.UsersServed
			}
			report(b, served)
		}},
	}
}

// BenchmarkFig10MaxCovUsers — Fig 10a (timing) and Fig 10b (users served,
// reported as a metric) versus dataset size.
func BenchmarkFig10MaxCovUsers(b *testing.B) {
	c := ctx()
	fs := c.Routes("ny", benchFacilities, benchStops)
	for _, d := range []struct {
		label string
		size  int
	}{{"0.5d", datagen.NYTHalfDay}, {"3d", datagen.NYT3Days}} {
		for _, m := range maxCovMethodBenches(c, d.size, fs) {
			b.Run(fmt.Sprintf("users=%s/method=%s", d.label, m.name), m.fn)
		}
	}
}

// BenchmarkFig10MaxCovFacilities — Fig 10c (timing) and Fig 10d (users
// served) versus facility count.
func BenchmarkFig10MaxCovFacilities(b *testing.B) {
	c := ctx()
	for _, n := range []int{16, 256} {
		fs := c.Routes("ny", n, benchStops)
		for _, m := range maxCovMethodBenches(c, datagen.NYT1Day, fs) {
			b.Run(fmt.Sprintf("facilities=%d/method=%s", n, m.name), m.fn)
		}
	}
}

// BenchmarkFig11ApproxRatio — Fig 11a/11b: the greedy and genetic
// solutions against exact enumeration (k=4; see EXPERIMENTS.md), with the
// achieved approximation ratio reported as a metric.
func BenchmarkFig11ApproxRatio(b *testing.B) {
	c := ctx()
	p := benchParams(service.Binary)
	for _, n := range []int{16, 32} {
		fs := c.Routes("ny", n, benchStops)
		engZ := c.Engine("nyt", datagen.NYT1Day, tqtree.TwoPoint, tqtree.ZOrder)
		src := maxcov.EngineSource{Engine: engZ}
		exact, err := maxcov.Exact(src, fs, 4, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("facilities=%d/method=G-TQ(Z)", n), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := maxcov.TwoStepGreedy(engZ, fs, 4, 0, p)
				if err != nil {
					b.Fatal(err)
				}
				if exact.Value > 0 {
					ratio = r.Value / exact.Value
				} else {
					ratio = 1
				}
			}
			b.ReportMetric(ratio, "approx-ratio")
		})
		b.Run(fmt.Sprintf("facilities=%d/method=Gn-TQ(Z)", n), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				r, err := maxcov.Genetic(src, fs, 4, p, maxcov.GeneticOptions{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if exact.Value > 0 {
					ratio = r.Value / exact.Value
				} else {
					ratio = 1
				}
			}
			b.ReportMetric(ratio, "approx-ratio")
		})
	}
}

// BenchmarkIndexConstruction — §VI.B.4: TQ(B) and TQ(Z) build times for
// growing NYT datasets.
func BenchmarkIndexConstruction(b *testing.B) {
	c := ctx()
	for _, d := range benchDays {
		users := c.Users("nyt", d.size)
		for _, o := range []tqtree.Ordering{tqtree.Basic, tqtree.ZOrder} {
			name := "TQ(B)"
			if o == tqtree.ZOrder {
				name = "TQ(Z)"
			}
			b.Run(fmt.Sprintf("users=%s/index=%s", d.label, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := tqtree.Build(users.All, tqtree.Options{
						Variant: tqtree.TwoPoint, Ordering: o,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationBeta — design-choice ablation: the effect of the block
// size β on TQ(Z) query time (DESIGN.md §5).
func BenchmarkAblationBeta(b *testing.B) {
	c := ctx()
	users := c.Users("nyt", datagen.NYT1Day)
	fs := c.Routes("ny", benchFacilities, benchStops)
	p := benchParams(service.Binary)
	for _, beta := range []int{16, 64, 256} {
		tree, err := tqtree.Build(users.All, tqtree.Options{
			Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Beta: beta,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng := query.NewEngine(tree, users)
		b.Run(fmt.Sprintf("beta=%d", beta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.TopK(fs, benchK, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceValueFrozen — the frozen columnar read path against
// the pointer tree it was frozen from: single-facility service values
// over TQ(Z), single-threaded. Both layouts run the same search and
// return bit-identical answers; the comparison isolates the flat SoA
// layout's cache behavior.
func BenchmarkServiceValueFrozen(b *testing.B) {
	c := ctx()
	users := c.Users("nyt", datagen.NYT1Day)
	fs := c.Routes("ny", benchFacilities, benchStops)
	p := benchParams(service.Binary)
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder})
	if err != nil {
		b.Fatal(err)
	}
	eng := query.NewEngine(tree, users)
	fz, err := tqtree.Freeze(tree)
	if err != nil {
		b.Fatal(err)
	}
	feng := query.NewFrozenEngine(fz, users)
	b.Run("layout=pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.ServiceValue(fs[i%len(fs)], p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("layout=frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := feng.ServiceValue(fs[i%len(fs)], p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTopKFrozen — frozen vs pointer best-first kMaxRRST, serial.
func BenchmarkTopKFrozen(b *testing.B) {
	c := ctx()
	users := c.Users("nyt", datagen.NYT1Day)
	fs := c.Routes("ny", benchFacilities, benchStops)
	p := benchParams(service.Binary)
	tree, err := tqtree.Build(users.All, tqtree.Options{Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder})
	if err != nil {
		b.Fatal(err)
	}
	eng := query.NewEngine(tree, users)
	fz, err := tqtree.Freeze(tree)
	if err != nil {
		b.Fatal(err)
	}
	feng := query.NewFrozenEngine(fz, users)
	b.Run("layout=pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.TopK(fs, benchK, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("layout=frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := feng.TopK(fs, benchK, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotRestore — restore cost of the two single-index
// snapshot formats over the same corpus: TQSNAP02 re-builds the TQ-tree
// from raw trajectories, TQSNAP03 bulk-reads the frozen columns.
func BenchmarkSnapshotRestore(b *testing.B) {
	c := ctx()
	users := c.Users("nyt", datagen.NYT1Day)
	idx, err := NewIndex(users.All, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		b.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	var rebuildBuf, frozenBuf bytes.Buffer
	if err := idx.WriteSnapshot(&rebuildBuf); err != nil {
		b.Fatal(err)
	}
	if err := fz.WriteSnapshot(&frozenBuf); err != nil {
		b.Fatal(err)
	}
	b.Run("format=rebuild-TQSNAP02", func(b *testing.B) {
		b.SetBytes(int64(rebuildBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := ReadSnapshot(bytes.NewReader(rebuildBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("format=frozen-TQSNAP03", func(b *testing.B) {
		b.SetBytes(int64(frozenBuf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := ReadFrozenSnapshot(bytes.NewReader(frozenBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInsert — dynamic maintenance: per-trajectory insert cost into
// a populated TQ(Z) index (Section III-C).
func BenchmarkInsert(b *testing.B) {
	c := ctx()
	users := c.Users("nyt", datagen.NYT1Day)
	bounds, _ := users.Bounds()
	fresh := datagen.TaxiTrips(datagen.NewYork(), 1<<16, 99)
	tree, err := tqtree.Build(users.All, tqtree.Options{
		Variant: tqtree.TwoPoint, Ordering: tqtree.ZOrder, Bounds: bounds.Expand(1000),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := fresh[i%len(fresh)]
		t2, err := trajectory.New(trajectory.ID(uint32(1<<28)+uint32(i)), u.Points)
		if err != nil {
			b.Fatal(err)
		}
		tree.Insert(t2)
	}
}
