package trajcover

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	users, routes := smallWorkload(t)
	for _, opts := range []IndexOptions{
		{},
		{Variant: FullTrajectory, Ordering: ZOrdering, Beta: 16},
		{Variant: Segmented, Ordering: BasicOrdering, Beta: 32},
	} {
		idx, err := NewIndex(users, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := idx.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if back.Len() != idx.Len() {
			t.Fatalf("restored %d trajectories, want %d", back.Len(), idx.Len())
		}
		// Restored index must answer queries identically.
		sc := Binary
		if opts.Variant == Segmented || opts.Variant == FullTrajectory {
			sc = PointCount
		}
		q := Query{Scenario: sc, Psi: DefaultPsi}
		for _, f := range routes[:5] {
			a, err := idx.ServiceValue(f, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.ServiceValue(f, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("facility %d: original %v, restored %v", f.ID, a, b)
			}
		}
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	users, _ := smallWorkload(t)
	idx, err := NewIndex(users[:100], IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("corrupted payload: err = %v, want ErrBadSnapshot", err)
	}

	// Truncated stream.
	if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)/3])); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated stream: err = %v, want ErrBadSnapshot", err)
	}

	// Wrong magic.
	bad2 := append([]byte(nil), good...)
	bad2[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(bad2)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("bad magic: err = %v, want ErrBadSnapshot", err)
	}

	// Empty stream.
	if _, err := ReadSnapshot(bytes.NewReader(nil)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("empty stream: err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotPreservesInsertedTrajectories(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users[:1500], IndexOptions{Bounds: Rect{MaxX: 30000, MaxY: 40000}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[1500:] {
		if err := idx.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	a, err := idx.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("post-insert snapshot mismatch: %v vs %v", a, b)
	}
}
