package trajcover

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	users, routes := smallWorkload(t)
	for _, opts := range []IndexOptions{
		{},
		{Variant: FullTrajectory, Ordering: ZOrdering, Beta: 16},
		{Variant: Segmented, Ordering: BasicOrdering, Beta: 32},
	} {
		idx, err := NewIndex(users, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := idx.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if back.Len() != idx.Len() {
			t.Fatalf("restored %d trajectories, want %d", back.Len(), idx.Len())
		}
		// Restored index must answer queries identically.
		sc := Binary
		if opts.Variant == Segmented || opts.Variant == FullTrajectory {
			sc = PointCount
		}
		q := Query{Scenario: sc, Psi: DefaultPsi}
		for _, f := range routes[:5] {
			a, err := idx.ServiceValue(f, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.ServiceValue(f, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("facility %d: original %v, restored %v", f.ID, a, b)
			}
		}
	}
}

// TestSnapshotPersistsMaxDepth checks the v2 header carries the depth
// bound, and that a legacy v1 stream (no MaxDepth field) still reads.
func TestSnapshotPersistsMaxDepth(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users[:500], IndexOptions{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	a, err := idx.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("restored shallow index answers %v, want %v", b, a)
	}

	// Synthesize the equivalent v1 stream: v1 magic, the same header
	// minus the MaxDepth field (index 7), same payload, recomputed CRC.
	v2 := buf.Bytes()
	payload := v2[8+9*8 : len(v2)-4]
	var v1 bytes.Buffer
	v1.WriteString("TQSNAP01")
	v1.Write(v2[8 : 8+7*8])     // variant..bounds
	v1.Write(v2[8+8*8 : 8+9*8]) // count
	v1.Write(payload)
	sum := crc32.ChecksumIEEE(v1.Bytes())
	if err := binary.Write(&v1, binary.LittleEndian, sum); err != nil {
		t.Fatal(err)
	}
	legacy, err := ReadSnapshot(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("legacy v1 stream rejected: %v", err)
	}
	if legacy.Len() != idx.Len() {
		t.Fatalf("legacy restore has %d trajectories, want %d", legacy.Len(), idx.Len())
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	users, _ := smallWorkload(t)
	idx, err := NewIndex(users[:100], IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("corrupted payload: err = %v, want ErrBadSnapshot", err)
	}

	// Truncated stream.
	if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)/3])); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated stream: err = %v, want ErrBadSnapshot", err)
	}

	// Wrong magic.
	bad2 := append([]byte(nil), good...)
	bad2[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(bad2)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("bad magic: err = %v, want ErrBadSnapshot", err)
	}

	// Empty stream.
	if _, err := ReadSnapshot(bytes.NewReader(nil)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("empty stream: err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotPreservesInsertedTrajectories(t *testing.T) {
	users, routes := smallWorkload(t)
	idx, err := NewIndex(users[:1500], IndexOptions{Bounds: Rect{MaxX: 30000, MaxY: 40000}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users[1500:] {
		if err := idx.Insert(u); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	a, err := idx.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ServiceValue(routes[0], q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("post-insert snapshot mismatch: %v vs %v", a, b)
	}
}

func TestShardedSnapshotRoundTrip(t *testing.T) {
	users, routes := smallWorkload(t)
	for _, opts := range []ShardOptions{
		{Shards: 1},
		{Shards: 4},
		{Shards: 3, Partitioner: GridPartitioner(), Index: IndexOptions{Beta: 16, MaxDepth: 6}},
	} {
		idx, err := NewShardedIndex(users, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := idx.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadShardedSnapshot(&buf)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if back.Len() != idx.Len() || back.NumShards() != idx.NumShards() {
			t.Fatalf("restored %d trajectories in %d shards, want %d in %d",
				back.Len(), back.NumShards(), idx.Len(), idx.NumShards())
		}
		ws, rs := idx.ShardSizes(), back.ShardSizes()
		for i := range ws {
			if ws[i] != rs[i] {
				t.Fatalf("shard %d restored with %d trajectories, want %d", i, rs[i], ws[i])
			}
		}
		// Restored index must answer identically: Binary values are
		// integral, so exact equality is required.
		q := Query{Scenario: Binary, Psi: DefaultPsi}
		wantTop, err := idx.TopK(routes, 8, q)
		if err != nil {
			t.Fatal(err)
		}
		gotTop, err := back.TopK(routes, 8, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantTop {
			if gotTop[i].Facility.ID != wantTop[i].Facility.ID ||
				gotTop[i].Service != wantTop[i].Service {
				t.Fatalf("rank %d: restored (%d, %v), want (%d, %v)", i,
					gotTop[i].Facility.ID, gotTop[i].Service,
					wantTop[i].Facility.ID, wantTop[i].Service)
			}
		}
		// A restored built-in partitioner must keep accepting Inserts.
		u, err := NewTrajectory(ID(900000), []Point{Pt(100, 100), Pt(200, 200)})
		if err != nil {
			t.Fatal(err)
		}
		if err := back.Insert(u); err != nil {
			t.Fatalf("insert into restored index: %v", err)
		}
	}
}

func TestShardedSnapshotDetectsCorruption(t *testing.T) {
	users, _ := smallWorkload(t)
	idx, err := NewShardedIndex(users[:300], ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a byte in the middle (some shard frame): the frame CRC must
	// catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := ReadShardedSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("corrupted frame: err = %v, want ErrBadSnapshot", err)
	}

	// Flip a header byte.
	bad2 := append([]byte(nil), good...)
	bad2[20] ^= 0xFF
	if _, err := ReadShardedSnapshot(bytes.NewReader(bad2)); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("corrupted header: err = %v, want ErrBadSnapshot", err)
	}

	// Truncated stream.
	if _, err := ReadShardedSnapshot(bytes.NewReader(good[:len(good)-9])); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated stream: err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotFormatsAreDistinguished(t *testing.T) {
	users, _ := smallWorkload(t)
	single, err := NewIndex(users[:100], IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedIndex(users[:100], ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sbuf, shbuf bytes.Buffer
	if err := single.WriteSnapshot(&sbuf); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteSnapshot(&shbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(shbuf.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("ReadSnapshot on sharded stream: err = %v, want ErrBadSnapshot", err)
	}
	if _, err := ReadShardedSnapshot(bytes.NewReader(sbuf.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("ReadShardedSnapshot on single stream: err = %v, want ErrBadSnapshot", err)
	}
}
