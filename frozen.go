package trajcover

// The frozen read path. A built Index (or ShardedIndex) can be frozen
// into an immutable columnar form — the whole TQ-tree laid out in a
// handful of contiguous slices — that answers the same queries
// bit-identically while walking flat arrays instead of chasing pointers:
// measurably faster single-threaded hot loops, ~zero pointer words for
// the GC, and snapshots that restore by bulk-reading the slices instead
// of rebuilding the tree (TQSNAP03/TQSHRD02; see snapshot_frozen.go).
//
// Freeze when the index has stopped changing and is about to serve reads:
// the mutable Index remains the build/Insert/Delete path, and a serving
// process re-freezes (or freezes one rebuilt shard at a time) to pick up
// changes.

import (
	"context"

	"github.com/trajcover/trajcover/internal/query"
	"github.com/trajcover/trajcover/internal/shard"
	"github.com/trajcover/trajcover/internal/tqtree"
	"github.com/trajcover/trajcover/internal/trajectory"
)

// FrozenIndex is the immutable columnar form of an Index. It answers
// ServiceValue/ServiceValues/TopK/TopKParallel with answers bit-identical
// to the Index it was frozen from, is safe for any number of concurrent
// readers, and cannot be mutated — Insert/Delete and the coverage-based
// queries (ServedUsers, MaxCoverage) stay on the mutable Index.
type FrozenIndex struct {
	engine *query.FrozenEngine
	set    *trajectory.Set
}

// Freeze produces the frozen columnar form of the index. The index is
// only read and remains fully usable; dropping it afterwards releases all
// pointer-tree storage (the frozen form shares only the trajectory
// objects).
func (x *Index) Freeze() (*FrozenIndex, error) {
	f, err := tqtree.Freeze(x.engine.Tree())
	if err != nil {
		return nil, err
	}
	return &FrozenIndex{engine: query.NewFrozenEngine(f, x.set), set: x.set}, nil
}

// NewFrozenIndex builds a frozen index directly from user trajectories:
// the mutable tree is built, frozen, and discarded, so only the columnar
// form is retained.
func NewFrozenIndex(users []*Trajectory, opts IndexOptions) (*FrozenIndex, error) {
	idx, err := NewIndex(users, opts)
	if err != nil {
		return nil, err
	}
	return idx.Freeze()
}

// Len returns the number of indexed user trajectories.
func (x *FrozenIndex) Len() int { return x.set.Len() }

// ServiceValue computes SO(U, f): the exact service value of one facility
// (Algorithm 1 of the paper) over the flat layout.
func (x *FrozenIndex) ServiceValue(f *Facility, q Query) (float64, error) {
	v, _, err := x.engine.ServiceValue(f, q.params())
	return v, err
}

// ServiceValues computes the exact service value of every facility in
// one batch across a pool of `workers` goroutines (<= 0 uses GOMAXPROCS).
func (x *FrozenIndex) ServiceValues(facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.engine.ServiceValues(facilities, q.params(), workers)
	return vs, err
}

// TopK answers the kMaxRRST query best first (Algorithm 3).
func (x *FrozenIndex) TopK(facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.engine.TopK(facilities, k, q.params())
	return res, err
}

// TopKWithMetrics is TopK returning work metrics for diagnostics.
func (x *FrozenIndex) TopKWithMetrics(facilities []*Facility, k int, q Query) ([]Ranked, QueryMetrics, error) {
	return x.engine.TopK(facilities, k, q.params())
}

// TopKParallel is TopK with up to `workers` best-first exploration steps
// run concurrently per round; the answer is identical to TopK.
func (x *FrozenIndex) TopKParallel(facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.engine.TopKParallel(facilities, k, q.params(), workers)
	return res, err
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation; see
// the deadline-aware variants note on Index.
func (x *FrozenIndex) ServiceValuesCtx(ctx context.Context, facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.engine.ServiceValuesCtx(ctx, facilities, q.params(), workers)
	return vs, err
}

// TopKCtx is TopK with cooperative cancellation; see the deadline-aware
// variants note on Index.
func (x *FrozenIndex) TopKCtx(ctx context.Context, facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.engine.TopKCtx(ctx, facilities, k, q.params())
	return res, err
}

// TopKParallelCtx is TopKParallel with cooperative cancellation; see the
// deadline-aware variants note on Index.
func (x *FrozenIndex) TopKParallelCtx(ctx context.Context, facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.engine.TopKParallelCtx(ctx, facilities, k, q.params(), workers)
	return res, err
}

// FrozenShardedIndex is the immutable columnar form of a ShardedIndex:
// every shard's tree frozen, served by the same scatter-gather merge.
type FrozenShardedIndex struct {
	s *shard.Frozen
}

// Freeze produces the frozen serving form of the sharded index, freezing
// each shard's tree. The source index is only read and remains usable.
func (x *ShardedIndex) Freeze() (*FrozenShardedIndex, error) {
	s, err := x.s.Freeze()
	if err != nil {
		return nil, err
	}
	return &FrozenShardedIndex{s: s}, nil
}

// NumShards returns the number of shards.
func (x *FrozenShardedIndex) NumShards() int { return x.s.NumShards() }

// ShardSizes returns the number of trajectories in each shard.
func (x *FrozenShardedIndex) ShardSizes() []int { return x.s.Sizes() }

// Len returns the total number of indexed user trajectories.
func (x *FrozenShardedIndex) Len() int { return x.s.Len() }

// ServiceValue computes SO(U, f) as the sum of per-shard service values.
func (x *FrozenShardedIndex) ServiceValue(f *Facility, q Query) (float64, error) {
	v, _, err := x.s.ServiceValue(f, q.params())
	return v, err
}

// ServiceValues computes the exact service value of every facility,
// scattering each shard's batch across `workers` goroutines.
func (x *FrozenShardedIndex) ServiceValues(facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValues(facilities, q.params(), workers)
	return vs, err
}

// TopK answers kMaxRRST over all frozen shards by scatter-gather.
func (x *FrozenShardedIndex) TopK(facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopK(facilities, k, q.params())
	return res, err
}

// TopKWithMetrics is TopK returning the merged per-shard work metrics.
func (x *FrozenShardedIndex) TopKWithMetrics(facilities []*Facility, k int, q Query) ([]Ranked, QueryMetrics, error) {
	return x.s.TopK(facilities, k, q.params())
}

// TopKParallel is TopK with up to `workers` facility relaxations run
// concurrently per round; the answer is identical to TopK.
func (x *FrozenShardedIndex) TopKParallel(facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallel(facilities, k, q.params(), workers)
	return res, err
}

// ServiceValuesCtx is ServiceValues with cooperative cancellation; see
// the deadline-aware variants note on Index.
func (x *FrozenShardedIndex) ServiceValuesCtx(ctx context.Context, facilities []*Facility, q Query, workers int) ([]float64, error) {
	vs, _, err := x.s.ServiceValuesCtx(ctx, facilities, q.params(), workers)
	return vs, err
}

// TopKCtx is TopK with cooperative cancellation; see the deadline-aware
// variants note on Index.
func (x *FrozenShardedIndex) TopKCtx(ctx context.Context, facilities []*Facility, k int, q Query) ([]Ranked, error) {
	res, _, err := x.s.TopKCtx(ctx, facilities, k, q.params())
	return res, err
}

// TopKParallelCtx is TopKParallel with cooperative cancellation; see the
// deadline-aware variants note on Index.
func (x *FrozenShardedIndex) TopKParallelCtx(ctx context.Context, facilities []*Facility, k int, q Query, workers int) ([]Ranked, error) {
	res, _, err := x.s.TopKParallelCtx(ctx, facilities, k, q.params(), workers)
	return res, err
}
