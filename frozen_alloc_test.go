package trajcover

import "testing"

// TestFrozenServiceValueAllocs asserts the frozen hot path stays within
// the pooled pointer path's allocation budget: at most 1 alloc/op (the
// PR 1 pooling target) and never more than the pointer path itself. Both
// paths draw scratch from sync.Pools, so a couple of warm-up queries
// populate them before measuring.
func TestFrozenServiceValueAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under -race: sync.Pool drops items deliberately")
	}
	ny := NewYorkCity()
	users := TaxiTrips(ny, 3000, 7)
	routes := BusRoutes(ny, 8, 32, 3)
	idx, err := NewIndex(users, IndexOptions{Ordering: ZOrdering})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := idx.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Scenario: Binary, Psi: DefaultPsi}
	for _, r := range routes {
		if _, err := idx.ServiceValue(r, q); err != nil {
			t.Fatal(err)
		}
		if _, err := fz.ServiceValue(r, q); err != nil {
			t.Fatal(err)
		}
	}
	ptr := testing.AllocsPerRun(200, func() {
		if _, err := idx.ServiceValue(routes[0], q); err != nil {
			t.Fatal(err)
		}
	})
	frozen := testing.AllocsPerRun(200, func() {
		if _, err := fz.ServiceValue(routes[0], q); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("ServiceValue allocs/op: pointer %.2f, frozen %.2f", ptr, frozen)
	if frozen > 1 {
		t.Fatalf("frozen ServiceValue allocates %.2f/op, want <= 1", frozen)
	}
	if frozen > ptr+0.5 {
		t.Fatalf("frozen ServiceValue allocates %.2f/op, pointer path %.2f/op", frozen, ptr)
	}
}
